package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cftcg/internal/benchmodels"
	"cftcg/internal/fuzz"
)

func solarpv(t *testing.T) *System {
	t.Helper()
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := FromModel(e.Build())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sys := solarpv(t)
	path := filepath.Join(t.TempDir(), "solarpv.slx")
	if err := sys.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if back.BranchCount() != sys.BranchCount() {
		t.Errorf("branch count changed across save/load: %d -> %d",
			sys.BranchCount(), back.BranchCount())
	}
	if back.Layout().TupleSize != sys.Layout().TupleSize {
		t.Error("layout changed across save/load")
	}
}

func TestLoadRejectsMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/path.slx"); err == nil {
		t.Error("expected error")
	}
}

// TestReplayMatchesCampaignCoverage: replaying the suite a fuzzing campaign
// emitted must reproduce at least the campaign's decision coverage — the
// emitted cases are exactly the inputs that triggered new coverage.
func TestReplayMatchesCampaignCoverage(t *testing.T) {
	sys := solarpv(t)
	res, err := sys.Fuzz(fuzz.Options{Seed: 11, MaxExecs: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suite.Cases) == 0 {
		t.Fatal("campaign emitted no cases")
	}
	var raw [][]byte
	for _, c := range res.Suite.Cases {
		raw = append(raw, c.Data)
	}
	rep, _ := sys.Replay(raw)
	if rep.DecisionCovered < res.Report.DecisionCovered {
		t.Errorf("replay covers %d decision outcomes, campaign had %d",
			rep.DecisionCovered, res.Report.DecisionCovered)
	}
	if rep.CondCovered < res.Report.CondCovered {
		t.Errorf("replay condition coverage dropped: %d < %d",
			rep.CondCovered, res.Report.CondCovered)
	}
}

func TestWriteSuite(t *testing.T) {
	sys := solarpv(t)
	res, err := sys.Fuzz(fuzz.Options{Seed: 5, MaxExecs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "suite")
	if err := sys.WriteSuite(dir, res.Suite); err != nil {
		t.Fatalf("WriteSuite: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	bins := 0
	haveCSV := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bin") {
			bins++
		}
		if e.Name() == "suite.csv" {
			haveCSV = true
		}
	}
	if bins != len(res.Suite.Cases) || !haveCSV {
		t.Errorf("suite dir contents: %d bins (want %d), csv=%v", bins, len(res.Suite.Cases), haveCSV)
	}
}

func TestGenerateFuzzCodeShape(t *testing.T) {
	sys := solarpv(t)
	code := sys.GenerateFuzzCode()
	if !strings.Contains(code.Driver, "FuzzTestOneInput") {
		t.Error("driver missing entry point")
	}
	if !strings.Contains(code.Driver, "int dataLen = 9") {
		t.Error("driver missing Figure 3's dataLen = 9")
	}
	if !strings.Contains(code.Step, "CoverageStatistics(") {
		t.Error("step function missing instrumentation")
	}
	if !strings.Contains(code.Init, "SolarPV_init") {
		t.Error("init function missing")
	}
}

func TestTraceVCD(t *testing.T) {
	sys := solarpv(t)
	data := make([]byte, 3*sys.Layout().TupleSize)
	data[0] = 1 // Enable on first step
	var sb strings.Builder
	if err := sys.Trace(&sb, data); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$scope module SolarPV $end",
		"in_Enable", "in_Power", "out_Ret",
		"$enddefinitions $end", "#0", "#3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
}

func TestReadSeedDir(t *testing.T) {
	sys := solarpv(t)
	res, err := sys.Fuzz(fuzz.Options{Seed: 6, MaxExecs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "suite")
	if err := sys.WriteSuite(dir, res.Suite); err != nil {
		t.Fatal(err)
	}
	seeds, err := ReadSeedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != len(res.Suite.Cases) {
		t.Fatalf("seeds: %d, want %d", len(seeds), len(res.Suite.Cases))
	}
	// Resuming from the seeds must reproduce the campaign's coverage with
	// almost no additional work.
	resumed, err := sys.Fuzz(fuzz.Options{Seed: 7, MaxExecs: int64(len(seeds)) + 10, SeedInputs: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Report.DecisionCovered < res.Report.DecisionCovered {
		t.Errorf("resume lost coverage: %d < %d",
			resumed.Report.DecisionCovered, res.Report.DecisionCovered)
	}
	if _, err := ReadSeedDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir should error")
	}
}

func TestConvertCase(t *testing.T) {
	sys := solarpv(t)
	data := make([]byte, 2*sys.Layout().TupleSize)
	var sb strings.Builder
	if err := sys.ConvertCase(&sb, data); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "step,Enable,Power,PanelID") {
		t.Errorf("CSV header: %s", sb.String())
	}
}
