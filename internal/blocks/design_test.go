package blocks

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

func TestResolveTypesPromote(t *testing.T) {
	b := model.NewBuilder("T")
	x := b.Inport("x", model.Int8)
	y := b.Inport("y", model.Int32)
	s := b.Add2(x, y)
	b.Outport("o", model.Int32, s)
	d, err := Resolve(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	sum := d.Model.Root.BlockByName("Sum1")
	if got := d.Root.OutType[model.PortRef{Block: sum.ID, Port: 0}]; got != model.Int32 {
		t.Errorf("sum type %s, want int32", got)
	}
}

func TestResolveRejectsUnconnectedInput(t *testing.T) {
	b := model.NewBuilder("U")
	x := b.Inport("x", model.Int32)
	g := b.Add("Sum", "s", model.Params{"Signs": "++"})
	b.Connect(x, g.In(0)) // port 1 left dangling
	b.Outport("o", model.Int32, g.Out(0))
	if _, err := Resolve(b.Model()); err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Errorf("want unconnected error, got %v", err)
	}
}

func TestResolveRejectsUnknownKind(t *testing.T) {
	b := model.NewBuilder("K")
	x := b.Inport("x", model.Int32)
	h := b.Add("FluxCapacitor", "f", nil)
	b.Connect(x, h.In(0))
	if _, err := Resolve(b.Model()); err == nil || !strings.Contains(err.Error(), "unknown block kind") {
		t.Errorf("want unknown-kind error, got %v", err)
	}
}

func TestResolveRejectsBadPort(t *testing.T) {
	b := model.NewBuilder("P")
	x := b.Inport("x", model.Int32)
	gn := b.Gain(x, 2)
	b.Outport("o", model.Int32, gn)
	m := b.Model()
	m.Root.Lines = append(m.Root.Lines, model.Line{
		Src: model.PortRef{Block: 0, Port: 7},
		Dst: model.PortRef{Block: 1, Port: 0},
	})
	if _, err := Resolve(m); err == nil {
		t.Error("want bad-port error")
	}
}

func TestResolveScriptCountMismatch(t *testing.T) {
	b := model.NewBuilder("S")
	x := b.Inport("x", model.Int32)
	b.Matlab("f", "input int32 a;\ninput int32 b;\noutput int32 y;\ny = a + b;", x) // only 1 wired
	if _, err := Resolve(b.Model()); err == nil {
		t.Error("want input count mismatch error")
	}
}

func TestFeedthroughComputation(t *testing.T) {
	b := model.NewBuilder("F")
	x := b.Inport("x", model.Float64)
	d := b.UnitDelay(x, 0)
	g := b.Gain(d, 2)
	b.Outport("o", model.Float64, g)
	des, err := Resolve(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	delay := des.Model.Root.BlockByName("UnitDelay1")
	if des.Root.Feed[delay.ID][0] {
		t.Error("UnitDelay input must be non-feedthrough")
	}
	gain := des.Model.Root.BlockByName("Gain2") // builder's anon counter is global
	if !des.Root.Feed[gain.ID][0] {
		t.Error("Gain input must be feedthrough")
	}
}

// A subsystem whose output depends only on an inner delay must be
// non-feedthrough at the outer level.
func TestSubsystemFeedthroughRecursion(t *testing.T) {
	b := model.NewBuilder("H")
	u := b.Inport("u", model.Float64)
	h, sub := b.Subsystem("inner")
	si := sub.Inport("si", model.Float64)
	sub.Outport("so", model.Float64, sub.UnitDelay(si, 0))
	b.Connect(u, h.In(0))
	b.Outport("o", model.Float64, h.Out(0))
	d, err := Resolve(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	inner := d.Model.Root.BlockByName("inner")
	if d.Root.Feed[inner.ID][0] {
		t.Error("delay-only subsystem must be non-feedthrough")
	}

	// Direct path variant: feedthrough.
	b2 := model.NewBuilder("H2")
	u2 := b2.Inport("u", model.Float64)
	h2, sub2 := b2.Subsystem("inner")
	si2 := sub2.Inport("si", model.Float64)
	sub2.Outport("so", model.Float64, sub2.Gain(si2, 3))
	b2.Connect(u2, h2.In(0))
	b2.Outport("o", model.Float64, h2.Out(0))
	d2, err := Resolve(b2.Model())
	if err != nil {
		t.Fatal(err)
	}
	inner2 := d2.Model.Root.BlockByName("inner")
	if !d2.Root.Feed[inner2.ID][0] {
		t.Error("direct-path subsystem must be feedthrough")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	Register(&Spec{Kind: "Gain"})
}

func TestKindsCatalogSize(t *testing.T) {
	kinds := Kinds()
	if len(kinds) < 40 {
		t.Errorf("catalog has %d kinds; the paper's tool ships 50+ templates", len(kinds))
	}
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Error("Kinds must be sorted")
		}
	}
}

func TestControlPortsAndClassifiers(t *testing.T) {
	if ControlPorts("Subsystem") != 0 || ControlPorts("EnabledSubsystem") != 1 ||
		ControlPorts("ActionSubsystem") != 1 || ControlPorts("TriggeredSubsystem") != 1 {
		t.Error("ControlPorts")
	}
	if !IsSubsystem("Subsystem") || IsSubsystem("Gain") {
		t.Error("IsSubsystem")
	}
	if !IsConditional("EnabledSubsystem") || IsConditional("Subsystem") {
		t.Error("IsConditional")
	}
}

func TestInTypePanicsOnUnresolved(t *testing.T) {
	gi := &GraphInfo{
		Source:  map[model.PortRef]model.PortRef{},
		OutType: map[model.PortRef]model.DType{},
	}
	defer func() {
		if recover() == nil {
			t.Error("InType on unconnected input must panic (programming error)")
		}
	}()
	gi.InType(0, 0)
}
