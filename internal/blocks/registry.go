// Package blocks is the block-template catalog: for every supported block
// kind it defines port counts, output type inference, direct-feedthrough
// structure and statefulness. The paper's tool ships "block templates for
// over fifty commonly used blocks"; this registry is that library.
//
// The catalog is open: examples/customblock registers its own kind through
// Register, exactly like adding an S-function template.
package blocks

import (
	"fmt"
	"sort"

	"cftcg/internal/mlfunc"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

// Spec describes one block kind.
type Spec struct {
	Kind string

	// InCount/OutCount give the number of input/output ports for a block
	// with the given parameters.
	InCount  func(b *model.Block) (int, error)
	OutCount func(b *model.Block) (int, error)

	// Infer computes output port types from resolved input types. in[i] is
	// the type of input port i. Returning an error aborts type resolution.
	Infer func(b *model.Block, in []model.DType) ([]model.DType, error)

	// NonFeedthrough lists input ports whose value is NOT needed to compute
	// this step's outputs (delay-like ports). Ports not listed are direct
	// feedthrough. Nil means all ports feed through.
	NonFeedthrough []int

	// Stateful marks blocks carrying state across steps.
	Stateful bool

	// Doc is a one-line description for tooling.
	Doc string
}

var registry = map[string]*Spec{}

// Register adds a block kind to the catalog. It panics on duplicates —
// registration happens at init time and a clash is a programming error.
func Register(s *Spec) {
	if s.Kind == "" {
		panic("blocks: Register with empty kind")
	}
	if _, dup := registry[s.Kind]; dup {
		panic("blocks: duplicate registration of kind " + s.Kind)
	}
	registry[s.Kind] = s
}

// Get returns the spec for kind, or an error naming the unknown kind.
func Get(kind string) (*Spec, error) {
	s, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("blocks: unknown block kind %q", kind)
	}
	return s, nil
}

// Kinds returns all registered kinds sorted by name.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fixed returns a port-count function returning n.
func fixed(n int) func(*model.Block) (int, error) {
	return func(*model.Block) (int, error) { return n, nil }
}

// paramCount returns a port-count function reading an integer parameter.
func paramCount(key string, def int64) func(*model.Block) (int, error) {
	return func(b *model.Block) (int, error) {
		n := b.Params.Int(key, def)
		if n < 1 {
			return 0, fmt.Errorf("blocks: %s: parameter %s must be >= 1, got %d", b.Path(), key, n)
		}
		return int(n), nil
	}
}

// passthrough infers the output type as the promotion of all inputs, unless
// the block declares an explicit "Type" parameter.
func passthrough(b *model.Block, in []model.DType) ([]model.DType, error) {
	if t := b.Params.DType("Type", 255); t != 255 {
		return []model.DType{t}, nil
	}
	if len(in) == 0 {
		return nil, fmt.Errorf("blocks: %s: cannot infer type without inputs", b.Path())
	}
	out := in[0]
	for _, t := range in[1:] {
		out = mlfunc.Promote(out, t)
	}
	return []model.DType{out}, nil
}

// boolOut always infers boolean output.
func boolOut(*model.Block, []model.DType) ([]model.DType, error) {
	return []model.DType{model.Bool}, nil
}

// sameAsInput infers the output type from input port i.
func sameAsInput(i int) func(*model.Block, []model.DType) ([]model.DType, error) {
	return func(b *model.Block, in []model.DType) ([]model.DType, error) {
		if i >= len(in) {
			return nil, fmt.Errorf("blocks: %s: missing input %d for type inference", b.Path(), i)
		}
		return []model.DType{in[i]}, nil
	}
}

// typeParam infers the output type from the "Type" parameter with a default.
func typeParam(def model.DType) func(*model.Block, []model.DType) ([]model.DType, error) {
	return func(b *model.Block, _ []model.DType) ([]model.DType, error) {
		return []model.DType{b.Params.DType("Type", def)}, nil
	}
}

// floatOut forces a floating-point output (double unless Type overrides).
func floatOut(b *model.Block, _ []model.DType) ([]model.DType, error) {
	return []model.DType{b.Params.DType("Type", model.Float64)}, nil
}

// ParseScript parses a MatlabFunction block's script (cached per call site
// by the resolver; parsing is cheap relative to model build).
func ParseScript(b *model.Block) (*mlfunc.Function, error) {
	f, err := mlfunc.Parse(b.Name, b.Script)
	if err != nil {
		return nil, fmt.Errorf("blocks: %s: %w", b.Path(), err)
	}
	return f, nil
}

// ChartOf extracts and validates the chart payload of a Chart block.
func ChartOf(b *model.Block) (*stateflow.Chart, error) {
	c, ok := b.ChartSpec.(*stateflow.Chart)
	if !ok || c == nil {
		return nil, fmt.Errorf("blocks: %s: Chart block has no chart payload", b.Path())
	}
	return c, nil
}

// conditionExprs returns an If block's parsed condition list parameter.
func conditionExprs(b *model.Block) ([]string, error) {
	conds, ok := b.Params["Conditions"].([]string)
	if !ok || len(conds) == 0 {
		return nil, fmt.Errorf("blocks: %s: If block needs a non-empty Conditions parameter", b.Path())
	}
	return conds, nil
}
