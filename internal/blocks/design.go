package blocks

import (
	"fmt"

	"cftcg/internal/mlfunc"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

// Design is the fully analyzed form of a model: every graph checked against
// the catalog, every output port typed, every script and chart parsed once
// and shared by all downstream consumers (coverage plan builder, code
// generator, interpreter). It corresponds to the paper's "Model Parser"
// output feeding both fuzz-driver generation and schedule conversion.
type Design struct {
	Model *model.Model
	Root  *GraphInfo

	// Funcs caches the parsed body of every MatlabFunction block.
	Funcs map[*model.Block]*mlfunc.Function
	// Charts caches every Chart block's validated chart and parsed
	// guard/action sources.
	Charts map[*model.Block]*ChartInfo
	// IfConds caches the parsed condition expressions of every If block,
	// typed against its inputs (u1..un).
	IfConds map[*model.Block][]mlfunc.Expr
}

// ChartInfo bundles a chart with its parsed guards and actions.
type ChartInfo struct {
	Chart *stateflow.Chart
	// Guards maps each transition to its parsed guard (nil = always true).
	Guards map[*stateflow.Transition]mlfunc.Expr
	// TransActs maps each transition to its parsed action statements.
	TransActs map[*stateflow.Transition][]mlfunc.Stmt
	// Entry/During/Exit map states to their parsed action statements.
	Entry  map[*stateflow.State][]mlfunc.Stmt
	During map[*stateflow.State][]mlfunc.Stmt
	Exit   map[*stateflow.State][]mlfunc.Stmt
}

// GraphInfo is the analyzed form of one graph (the root diagram or one
// subsystem's contents).
type GraphInfo struct {
	Path  string
	Block *model.Block // owning subsystem block; nil for the root
	Graph *model.Graph

	InCount  map[model.BlockID]int
	OutCount map[model.BlockID]int
	// Source maps every connected input port to its driver.
	Source map[model.PortRef]model.PortRef
	// OutType holds the resolved data type of every output port.
	OutType map[model.PortRef]model.DType
	// Feed[id][p] reports whether input port p of block id is direct
	// feedthrough (its current-step value is needed to produce outputs).
	Feed map[model.BlockID][]bool
	// Children maps subsystem block IDs to their analyzed inner graphs.
	Children map[model.BlockID]*GraphInfo
	// Order is the execution schedule, filled in by the schedule package.
	Order []model.BlockID
}

// InTypes returns the resolved types of block id's input ports, or false if
// any is not yet known.
func (gi *GraphInfo) InTypes(id model.BlockID) ([]model.DType, bool) {
	n := gi.InCount[id]
	types := make([]model.DType, n)
	for p := 0; p < n; p++ {
		src, ok := gi.Source[model.PortRef{Block: id, Port: p}]
		if !ok {
			return nil, false
		}
		t, ok := gi.OutType[src]
		if !ok {
			return nil, false
		}
		types[p] = t
	}
	return types, true
}

// InType returns the resolved type of one input port. It panics if called
// before resolution completed (a programming error in downstream passes).
func (gi *GraphInfo) InType(id model.BlockID, port int) model.DType {
	src, ok := gi.Source[model.PortRef{Block: id, Port: port}]
	if !ok {
		panic(fmt.Sprintf("blocks: %s: block %d input %d unconnected", gi.Path, id, port))
	}
	t, ok := gi.OutType[src]
	if !ok {
		panic(fmt.Sprintf("blocks: %s: block %d input %d untyped", gi.Path, id, port))
	}
	return t
}

// Resolve analyzes a model: structural validation, catalog checking, port
// wiring, type resolution, feedthrough computation, and script/chart parsing.
func Resolve(m *model.Model) (*Design, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	d := &Design{
		Model:   m,
		Funcs:   map[*model.Block]*mlfunc.Function{},
		Charts:  map[*model.Block]*ChartInfo{},
		IfConds: map[*model.Block][]mlfunc.Expr{},
	}
	root, err := d.buildGraphInfo(&m.Root, m.Name, nil)
	if err != nil {
		return nil, err
	}
	d.Root = root

	// Seed root inport types from their declarations, then run the type
	// fixpoint over the whole hierarchy.
	for _, p := range m.Inports() {
		d.Root.OutType[model.PortRef{Block: p.ID, Port: 0}] = p.Params.DType("Type", model.Float64)
	}
	for round := 0; ; round++ {
		progress, done, err := d.resolveGraph(root)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		if !progress {
			return nil, fmt.Errorf("blocks: %s: type resolution stuck — a delay inside an algebraic-looking cycle probably needs an explicit Type parameter", root.Path)
		}
		if round > 10000 {
			return nil, fmt.Errorf("blocks: %s: type resolution did not converge", root.Path)
		}
	}

	if err := d.computeFeedthrough(root); err != nil {
		return nil, err
	}
	if err := d.parseUserCode(root); err != nil {
		return nil, err
	}
	return d, nil
}

// buildGraphInfo checks one graph against the catalog and recurses into
// subsystems. Types are not resolved yet.
func (d *Design) buildGraphInfo(g *model.Graph, path string, owner *model.Block) (*GraphInfo, error) {
	gi := &GraphInfo{
		Path:     path,
		Block:    owner,
		Graph:    g,
		InCount:  map[model.BlockID]int{},
		OutCount: map[model.BlockID]int{},
		Source:   map[model.PortRef]model.PortRef{},
		OutType:  map[model.PortRef]model.DType{},
		Feed:     map[model.BlockID][]bool{},
		Children: map[model.BlockID]*GraphInfo{},
	}
	for _, b := range g.Blocks {
		spec, err := Get(b.Kind)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", path, b.Name, err)
		}
		nin, err := spec.InCount(b)
		if err != nil {
			return nil, err
		}
		nout, err := spec.OutCount(b)
		if err != nil {
			return nil, err
		}
		gi.InCount[b.ID] = nin
		gi.OutCount[b.ID] = nout
		if IsSubsystem(b.Kind) {
			child, err := d.buildGraphInfo(b.Sub, path+"/"+b.Name, b)
			if err != nil {
				return nil, err
			}
			gi.Children[b.ID] = child
		}
	}
	for _, l := range g.Lines {
		if l.Src.Port >= gi.OutCount[l.Src.Block] {
			return nil, fmt.Errorf("blocks: %s/%s: no output port %d", path, g.Block(l.Src.Block).Name, l.Src.Port)
		}
		if l.Dst.Port >= gi.InCount[l.Dst.Block] {
			return nil, fmt.Errorf("blocks: %s/%s: no input port %d", path, g.Block(l.Dst.Block).Name, l.Dst.Port)
		}
		gi.Source[l.Dst] = l.Src
	}
	for _, b := range g.Blocks {
		for p := 0; p < gi.InCount[b.ID]; p++ {
			if _, ok := gi.Source[model.PortRef{Block: b.ID, Port: p}]; !ok {
				return nil, fmt.Errorf("blocks: %s/%s: input port %d is unconnected", path, b.Name, p)
			}
		}
	}
	return gi, nil
}

// graphResolved reports whether every output port in the graph (and its
// nested graphs) has a resolved type.
func graphResolved(gi *GraphInfo) bool {
	for _, b := range gi.Graph.Blocks {
		if gi.OutCount[b.ID] > 0 {
			if _, ok := gi.OutType[model.PortRef{Block: b.ID, Port: 0}]; !ok {
				return false
			}
		}
	}
	for _, child := range gi.Children {
		if !graphResolved(child) {
			return false
		}
	}
	return true
}

// resolveGraph performs one fixpoint round. outer inport types must already
// be seeded by the caller (root) or parent (subsystems).
func (d *Design) resolveGraph(gi *GraphInfo) (progress, done bool, err error) {
	done = true
	for _, b := range gi.Graph.Blocks {
		nout := gi.OutCount[b.ID]

		if IsSubsystem(b.Kind) {
			// Keep recursing until the *whole* child graph is typed —
			// explicitly-typed outports can resolve the subsystem's
			// interface before its internals.
			child := gi.Children[b.ID]
			_, outsDone := gi.OutType[model.PortRef{Block: b.ID, Port: 0}]
			if (nout == 0 || outsDone) && graphResolved(child) {
				continue
			}
			done = false
			p, d2, err := d.resolveSubsystem(gi, b)
			if err != nil {
				return false, false, err
			}
			progress = progress || p
			done = done && d2 && graphResolved(child)
			continue
		}

		if nout == 0 {
			continue
		}
		if _, ok := gi.OutType[model.PortRef{Block: b.ID, Port: 0}]; ok {
			continue // already resolved
		}
		done = false

		spec, _ := Get(b.Kind)
		if spec.Infer == nil {
			return false, false, fmt.Errorf("blocks: %s/%s: kind %s has no type inference", gi.Path, b.Name, b.Kind)
		}
		in, ok := gi.InTypes(b.ID)
		if !ok {
			// Passthrough blocks with an explicit Type parameter can
			// resolve without inputs (needed to break cycles at delays).
			if t := b.Params.DType("Type", 255); t != 255 && nout == 1 {
				gi.OutType[model.PortRef{Block: b.ID, Port: 0}] = t
				progress = true
			}
			continue
		}
		outs, err := spec.Infer(b, in)
		if err != nil {
			return false, false, err
		}
		if len(outs) != nout {
			return false, false, fmt.Errorf("blocks: %s/%s: inference returned %d types for %d outputs", gi.Path, b.Name, len(outs), nout)
		}
		for i, t := range outs {
			if !t.Valid() {
				return false, false, fmt.Errorf("blocks: %s/%s: invalid inferred type on output %d", gi.Path, b.Name, i)
			}
			gi.OutType[model.PortRef{Block: b.ID, Port: i}] = t
		}
		progress = true
	}
	return progress, done, nil
}

// resolveSubsystem pushes outer input types into a child graph, advances its
// fixpoint, and pulls inner Outport types back out when available.
func (d *Design) resolveSubsystem(gi *GraphInfo, b *model.Block) (progress, done bool, err error) {
	child := gi.Children[b.ID]
	ctrl := ControlPorts(b.Kind)

	// Seed inner Inport types from declared types or outer drivers.
	for _, ip := range child.Graph.BlocksOfKind("Inport") {
		ref := model.PortRef{Block: ip.ID, Port: 0}
		if _, ok := child.OutType[ref]; ok {
			continue
		}
		if t := ip.Params.DType("Type", 255); t != 255 {
			child.OutType[ref] = t
			progress = true
			continue
		}
		// Inner index k maps to outer data port (k-1)+ctrl.
		outerPort := int(ip.Params.Int("Index", 1)) - 1 + ctrl
		src, ok := gi.Source[model.PortRef{Block: b.ID, Port: outerPort}]
		if !ok {
			return false, false, fmt.Errorf("blocks: %s/%s: subsystem input %d unconnected", gi.Path, b.Name, outerPort)
		}
		if t, ok := gi.OutType[src]; ok {
			child.OutType[ref] = t
			progress = true
		}
	}

	p2, _, err := d.resolveGraph(child)
	if err != nil {
		return false, false, err
	}
	progress = progress || p2

	// Pull inner Outport types to the subsystem's output ports.
	resolvedAll := true
	for _, op := range sortedByIndex(child.Graph.BlocksOfKind("Outport")) {
		outIdx := int(op.Params.Int("Index", 1)) - 1
		ref := model.PortRef{Block: b.ID, Port: outIdx}
		if _, ok := gi.OutType[ref]; ok {
			continue
		}
		var t model.DType
		if dt := op.Params.DType("Type", 255); dt != 255 {
			t = dt
		} else {
			src, ok := child.Source[model.PortRef{Block: op.ID, Port: 0}]
			if !ok {
				return false, false, fmt.Errorf("blocks: %s/%s: inner outport %s unconnected", gi.Path, b.Name, op.Name)
			}
			var known bool
			t, known = child.OutType[src]
			if !known {
				resolvedAll = false
				continue
			}
		}
		gi.OutType[ref] = t
		progress = true
	}
	return progress, resolvedAll, nil
}

func sortedByIndex(bs []*model.Block) []*model.Block {
	out := append([]*model.Block(nil), bs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Params.Int("Index", 0) < out[j-1].Params.Int("Index", 0); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// computeFeedthrough fills Feed for every block. For primitives it comes
// from the catalog; for subsystems it is the recursive reachability from
// each data input to any inner Outport through feedthrough edges. Control
// ports always feed through (the condition is read before execution).
func (d *Design) computeFeedthrough(gi *GraphInfo) error {
	for _, b := range gi.Graph.Blocks {
		nin := gi.InCount[b.ID]
		feed := make([]bool, nin)
		for i := range feed {
			feed[i] = true
		}
		if IsSubsystem(b.Kind) {
			child := gi.Children[b.ID]
			if err := d.computeFeedthrough(child); err != nil {
				return err
			}
			ctrl := ControlPorts(b.Kind)
			for _, ip := range child.Graph.BlocksOfKind("Inport") {
				outerPort := int(ip.Params.Int("Index", 1)) - 1 + ctrl
				if outerPort < nin {
					feed[outerPort] = reachesOutport(child, ip.ID)
				}
			}
		} else {
			spec, _ := Get(b.Kind)
			for _, p := range spec.NonFeedthrough {
				if p < nin {
					feed[p] = false
				}
			}
		}
		gi.Feed[b.ID] = feed
	}
	return nil
}

// reachesOutport reports whether a feedthrough path exists from the given
// inner Inport to any Outport of the child graph.
func reachesOutport(gi *GraphInfo, from model.BlockID) bool {
	visited := map[model.BlockID]bool{from: true}
	stack := []model.BlockID{from}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if gi.Graph.Block(id).Kind == "Outport" {
			return true
		}
		for p := 0; p < gi.OutCount[id]; p++ {
			for _, dst := range gi.Graph.FanOut(model.PortRef{Block: id, Port: p}) {
				df := gi.Feed[dst.Block]
				if dst.Port < len(df) && !df[dst.Port] {
					continue // value consumed next step, not this one
				}
				if !visited[dst.Block] {
					visited[dst.Block] = true
					stack = append(stack, dst.Block)
				}
			}
		}
	}
	return false
}

// parseUserCode parses MatlabFunction scripts, chart guards/actions, and If
// block conditions once, caching the results on the Design.
func (d *Design) parseUserCode(gi *GraphInfo) error {
	for _, b := range gi.Graph.Blocks {
		switch b.Kind {
		case "MatlabFunction":
			f, err := ParseScript(b)
			if err != nil {
				return err
			}
			if gi.InCount[b.ID] != len(f.Inputs()) {
				return fmt.Errorf("blocks: %s/%s: script declares %d inputs, %d wired", gi.Path, b.Name, len(f.Inputs()), gi.InCount[b.ID])
			}
			d.Funcs[b] = f

		case "Chart":
			c, err := ChartOf(b)
			if err != nil {
				return err
			}
			if err := c.Validate(); err != nil {
				return fmt.Errorf("blocks: %s/%s: %w", gi.Path, b.Name, err)
			}
			ci, err := parseChart(c)
			if err != nil {
				return fmt.Errorf("blocks: %s/%s: %w", gi.Path, b.Name, err)
			}
			d.Charts[b] = ci

		case "If":
			conds, err := conditionExprs(b)
			if err != nil {
				return err
			}
			syms := map[string]model.DType{}
			for p := 0; p < gi.InCount[b.ID]; p++ {
				syms[fmt.Sprintf("u%d", p+1)] = gi.InType(b.ID, p)
			}
			exprs := make([]mlfunc.Expr, len(conds))
			for i, src := range conds {
				e, err := mlfunc.ParseExpr(src, syms)
				if err != nil {
					return fmt.Errorf("blocks: %s/%s: condition %d: %w", gi.Path, b.Name, i+1, err)
				}
				exprs[i] = e
			}
			d.IfConds[b] = exprs
		}
	}
	for _, child := range gi.Children {
		if err := d.parseUserCode(child); err != nil {
			return err
		}
	}
	return nil
}

func parseChart(c *stateflow.Chart) (*ChartInfo, error) {
	ci := &ChartInfo{
		Chart:     c,
		Guards:    map[*stateflow.Transition]mlfunc.Expr{},
		TransActs: map[*stateflow.Transition][]mlfunc.Stmt{},
		Entry:     map[*stateflow.State][]mlfunc.Stmt{},
		During:    map[*stateflow.State][]mlfunc.Stmt{},
		Exit:      map[*stateflow.State][]mlfunc.Stmt{},
	}
	syms := c.Symbols()
	for _, t := range c.Transitions {
		if t.Guard != "" {
			e, err := mlfunc.ParseExpr(t.Guard, syms)
			if err != nil {
				return nil, fmt.Errorf("transition %s: %w", t.Label(), err)
			}
			ci.Guards[t] = e
		}
		if t.Action != "" {
			st, err := mlfunc.ParseStmts(t.Action, syms)
			if err != nil {
				return nil, fmt.Errorf("transition %s action: %w", t.Label(), err)
			}
			ci.TransActs[t] = st
		}
	}
	for _, s := range c.States {
		for _, part := range []struct {
			src string
			dst map[*stateflow.State][]mlfunc.Stmt
		}{
			{s.Entry, ci.Entry}, {s.During, ci.During}, {s.Exit, ci.Exit},
		} {
			if part.src == "" {
				continue
			}
			st, err := mlfunc.ParseStmts(part.src, syms)
			if err != nil {
				return nil, fmt.Errorf("state %s: %w", s.Name, err)
			}
			part.dst[s] = st
		}
	}
	return ci, nil
}
