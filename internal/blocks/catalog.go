package blocks

import (
	"fmt"

	"cftcg/internal/model"
)

// The built-in catalog. Each Register call is one "block template" in the
// paper's terminology. Execution semantics live in internal/codegen (lowering
// to IR) and internal/interp (direct evaluation); this file fixes the
// interface contracts both implementations honor.
func init() {
	// --- sources ---------------------------------------------------------
	Register(&Spec{
		Kind: "Inport", Doc: "root or subsystem input port",
		InCount: fixed(0), OutCount: fixed(1),
		Infer: typeParam(model.Float64),
	})
	Register(&Spec{
		Kind: "Constant", Doc: "constant value source",
		InCount: fixed(0), OutCount: fixed(1),
		Infer: typeParam(model.Float64),
	})
	Register(&Spec{
		Kind: "Ground", Doc: "zero source",
		InCount: fixed(0), OutCount: fixed(1),
		Infer: typeParam(model.Float64),
	})
	Register(&Spec{
		Kind: "Clock", Doc: "simulation time source (n * sample time)",
		InCount: fixed(0), OutCount: fixed(1),
		Infer: floatOut, Stateful: true,
	})
	Register(&Spec{
		Kind: "Counter", Doc: "free-running counter: Init, +Inc per step, wraps after Max",
		InCount: fixed(0), OutCount: fixed(1),
		Infer: typeParam(model.Int32), Stateful: true,
	})

	// --- single-input math -------------------------------------------------
	for _, k := range []struct{ kind, doc string }{
		{"Gain", "multiply by constant Gain"},
		{"Bias", "add constant Bias"},
		{"Abs", "absolute value (decision: negative / non-negative)"},
		{"Sign", "signum (decision: neg / zero / pos)"},
		{"UnaryMinus", "negate"},
		{"Rounding", "floor/ceil/round/fix per Fn parameter"},
		{"Quantizer", "quantize to multiples of Interval"},
		{"Saturation", "clamp to [Lower, Upper] (3-outcome decision)"},
		{"DeadZone", "zero inside [Start, End] (3-outcome decision)"},
	} {
		Register(&Spec{
			Kind: k.kind, Doc: k.doc,
			InCount: fixed(1), OutCount: fixed(1),
			Infer: sameAsInput(0),
		})
	}
	for _, k := range []struct{ kind, doc string }{
		{"Sqrt", "square root"},
		{"Exp", "exponential"},
		{"Log", "natural logarithm"},
		{"Trigonometry", "sin/cos/tan per Fn parameter"},
	} {
		Register(&Spec{
			Kind: k.kind, Doc: k.doc,
			InCount: fixed(1), OutCount: fixed(1),
			Infer: floatOut,
		})
	}
	Register(&Spec{
		Kind: "RateLimiter", Doc: "limit per-step rise/fall (3-outcome decision)",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: sameAsInput(0), Stateful: true,
	})
	Register(&Spec{
		Kind: "Relay", Doc: "hysteresis switch between OnValue/OffValue (2-outcome decision)",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: sameAsInput(0), Stateful: true,
	})
	Register(&Spec{
		Kind: "DataTypeConversion", Doc: "cast to the Type parameter",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: typeParam(model.Float64),
	})
	Register(&Spec{
		Kind: "Lookup1D", Doc: "1-D table lookup, linear interpolation, clamped ends",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: floatOut,
	})

	// --- multi-input math --------------------------------------------------
	Register(&Spec{
		Kind: "Sum", Doc: "signed sum; Signs gives one of +/- per input",
		InCount: func(b *model.Block) (int, error) {
			signs := b.Params.String("Signs", "++")
			for _, c := range signs {
				if c != '+' && c != '-' {
					return 0, fmt.Errorf("blocks: %s: bad Signs %q", b.Path(), signs)
				}
			}
			return len(signs), nil
		},
		OutCount: fixed(1), Infer: passthrough,
	})
	Register(&Spec{
		Kind: "Product", Doc: "multiply/divide; Ops gives one of */ per input",
		InCount: func(b *model.Block) (int, error) {
			ops := b.Params.String("Ops", "**")
			for _, c := range ops {
				if c != '*' && c != '/' {
					return 0, fmt.Errorf("blocks: %s: bad Ops %q", b.Path(), ops)
				}
			}
			return len(ops), nil
		},
		OutCount: fixed(1), Infer: passthrough,
	})
	Register(&Spec{
		Kind: "MinMax", Doc: "min or max of inputs (N-outcome decision: which input wins)",
		InCount: paramCount("Inputs", 2), OutCount: fixed(1),
		Infer: passthrough,
	})

	// --- logic --------------------------------------------------------------
	Register(&Spec{
		Kind: "LogicalOperator", Doc: "AND/OR/NAND/NOR/XOR/NOT (decision + per-input conditions)",
		InCount: func(b *model.Block) (int, error) {
			if b.Params.String("Op", "AND") == "NOT" {
				return 1, nil
			}
			n := b.Params.Int("Inputs", 2)
			if n < 1 {
				return 0, fmt.Errorf("blocks: %s: Inputs must be >= 1", b.Path())
			}
			return int(n), nil
		},
		OutCount: fixed(1), Infer: boolOut,
	})
	Register(&Spec{
		Kind: "RelationalOperator", Doc: "== ~= < <= > >= comparison",
		InCount: fixed(2), OutCount: fixed(1),
		Infer: boolOut,
	})
	Register(&Spec{
		Kind: "Bitwise", Doc: "bitwise AND/OR/XOR/SHL/SHR on integers",
		InCount: fixed(2), OutCount: fixed(1),
		Infer: sameAsInput(0),
	})
	Register(&Spec{
		Kind: "CompareToConstant", Doc: "compare input against Value parameter",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: boolOut,
	})
	Register(&Spec{
		Kind: "CompareToZero", Doc: "compare input against zero",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: boolOut,
	})

	// --- routing -------------------------------------------------------------
	Register(&Spec{
		Kind: "Switch", Doc: "port1 if control passes Criteria/Threshold else port3 (2-outcome decision)",
		InCount: fixed(3), OutCount: fixed(1),
		Infer: func(b *model.Block, in []model.DType) ([]model.DType, error) {
			if len(in) < 3 {
				return nil, fmt.Errorf("blocks: %s: Switch needs 3 inputs", b.Path())
			}
			return passthrough(b, []model.DType{in[0], in[2]})
		},
	})
	Register(&Spec{
		Kind: "MultiportSwitch", Doc: "select among N data inputs by 1-based index (N-outcome decision)",
		InCount: func(b *model.Block) (int, error) {
			n := b.Params.Int("Inputs", 2)
			if n < 2 {
				return 0, fmt.Errorf("blocks: %s: MultiportSwitch needs >= 2 data inputs", b.Path())
			}
			return int(n) + 1, nil
		},
		OutCount: fixed(1),
		Infer: func(b *model.Block, in []model.DType) ([]model.DType, error) {
			return passthrough(b, in[1:])
		},
	})
	Register(&Spec{
		Kind: "Merge", Doc: "merge outputs of conditionally-executed branches",
		InCount: paramCount("Inputs", 2), OutCount: fixed(1),
		Infer: passthrough, Stateful: true,
	})

	// --- discrete -------------------------------------------------------------
	Register(&Spec{
		Kind: "UnitDelay", Doc: "one-step delay (Init parameter)",
		InCount: fixed(1), OutCount: fixed(1),
		Infer:          passthrough,
		NonFeedthrough: []int{0}, Stateful: true,
	})
	Register(&Spec{
		Kind: "Memory", Doc: "previous-step value (alias of UnitDelay)",
		InCount: fixed(1), OutCount: fixed(1),
		Infer:          passthrough,
		NonFeedthrough: []int{0}, Stateful: true,
	})
	Register(&Spec{
		Kind: "Delay", Doc: "N-step delay (Steps parameter)",
		InCount: fixed(1), OutCount: fixed(1),
		Infer:          passthrough,
		NonFeedthrough: []int{0}, Stateful: true,
	})
	Register(&Spec{
		Kind: "DiscreteIntegrator", Doc: "forward-Euler accumulator with optional saturation",
		InCount: fixed(1), OutCount: fixed(1),
		Infer:          floatOut,
		NonFeedthrough: []int{0}, Stateful: true,
	})
	Register(&Spec{
		Kind: "ZeroOrderHold", Doc: "identity at a single rate",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: sameAsInput(0),
	})

	// --- signal monitors (mode (d) instrumentation) ---------------------------
	for _, k := range []struct{ kind, doc string }{
		{"DetectChange", "true when the input differs from the previous step"},
		{"DetectIncrease", "true when the input rose since the previous step"},
		{"DetectDecrease", "true when the input fell since the previous step"},
	} {
		Register(&Spec{
			Kind: k.kind, Doc: k.doc,
			InCount: fixed(1), OutCount: fixed(1),
			Infer: boolOut, Stateful: true,
		})
	}
	Register(&Spec{
		Kind: "IntervalTest", Doc: "true when Lo <= input <= Hi",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: boolOut,
	})
	Register(&Spec{
		Kind: "Backlash", Doc: "mechanical play: output follows input outside a deadband of Width",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: sameAsInput(0), Stateful: true,
	})
	Register(&Spec{
		Kind: "WrapToZero", Doc: "zero when the input exceeds Threshold, pass-through otherwise",
		InCount: fixed(1), OutCount: fixed(1),
		Infer: sameAsInput(0),
	})
	Register(&Spec{
		Kind: "Assertion", Doc: "verification block: records a violation when its input is false",
		InCount: fixed(1), OutCount: fixed(0),
		Infer: func(*model.Block, []model.DType) ([]model.DType, error) { return nil, nil },
	})

	// --- sinks ----------------------------------------------------------------
	Register(&Spec{
		Kind: "Outport", Doc: "root or subsystem output port",
		InCount: fixed(1), OutCount: fixed(0),
		Infer: func(*model.Block, []model.DType) ([]model.DType, error) { return nil, nil },
	})
	Register(&Spec{
		Kind: "Terminator", Doc: "swallow an unused signal",
		InCount: fixed(1), OutCount: fixed(0),
		Infer: func(*model.Block, []model.DType) ([]model.DType, error) { return nil, nil },
	})
	Register(&Spec{
		Kind: "Scope", Doc: "no-op sink for observing signals",
		InCount: paramCount("Inputs", 1), OutCount: fixed(0),
		Infer: func(*model.Block, []model.DType) ([]model.DType, error) { return nil, nil },
	})

	// --- structure --------------------------------------------------------------
	Register(&Spec{
		Kind: "Subsystem", Doc: "atomic subsystem",
		InCount:  subsystemIn(0),
		OutCount: subsystemOut,
		Infer:    nil, // resolved recursively by the type resolver
	})
	Register(&Spec{
		Kind: "EnabledSubsystem", Doc: "subsystem executed while control port 0 is > 0; outputs hold",
		InCount:  subsystemIn(1),
		OutCount: subsystemOut,
		Infer:    nil, Stateful: true,
	})
	Register(&Spec{
		Kind: "TriggeredSubsystem", Doc: "subsystem executed on rising edge of port 0; outputs hold",
		InCount:  subsystemIn(1),
		OutCount: subsystemOut,
		Infer:    nil, Stateful: true,
	})
	Register(&Spec{
		Kind: "ActionSubsystem", Doc: "subsystem executed when its If/SwitchCase action port is true",
		InCount:  subsystemIn(1),
		OutCount: subsystemOut,
		Infer:    nil, Stateful: true,
	})
	Register(&Spec{
		Kind: "If", Doc: "emit action signals per condition expression (N+1-outcome decision)",
		InCount: paramCount("Inputs", 1),
		OutCount: func(b *model.Block) (int, error) {
			conds, err := conditionExprs(b)
			if err != nil {
				return 0, err
			}
			return len(conds) + 1, nil
		},
		Infer: func(b *model.Block, _ []model.DType) ([]model.DType, error) {
			conds, err := conditionExprs(b)
			if err != nil {
				return nil, err
			}
			out := make([]model.DType, len(conds)+1)
			for i := range out {
				out[i] = model.Bool
			}
			return out, nil
		},
	})
	Register(&Spec{
		Kind: "SwitchCase", Doc: "emit action signals per integer case (N+1-outcome decision)",
		InCount: fixed(1),
		OutCount: func(b *model.Block) (int, error) {
			cases := b.Params.Ints("Cases", nil)
			if len(cases) == 0 {
				return 0, fmt.Errorf("blocks: %s: SwitchCase needs a non-empty Cases parameter", b.Path())
			}
			return len(cases) + 1, nil
		},
		Infer: func(b *model.Block, _ []model.DType) ([]model.DType, error) {
			cases := b.Params.Ints("Cases", nil)
			out := make([]model.DType, len(cases)+1)
			for i := range out {
				out[i] = model.Bool
			}
			return out, nil
		},
	})

	// --- user-defined ---------------------------------------------------------
	Register(&Spec{
		Kind: "MatlabFunction", Doc: "imperative function block in the mlfunc language",
		InCount: func(b *model.Block) (int, error) {
			f, err := ParseScript(b)
			if err != nil {
				return 0, err
			}
			return len(f.Inputs()), nil
		},
		OutCount: func(b *model.Block) (int, error) {
			f, err := ParseScript(b)
			if err != nil {
				return 0, err
			}
			return len(f.Outputs()), nil
		},
		Infer: func(b *model.Block, _ []model.DType) ([]model.DType, error) {
			f, err := ParseScript(b)
			if err != nil {
				return nil, err
			}
			outs := f.Outputs()
			types := make([]model.DType, len(outs))
			for i, o := range outs {
				types[i] = o.Type
			}
			return types, nil
		},
		Stateful: true,
	})
	Register(&Spec{
		Kind: "Chart", Doc: "Stateflow chart block",
		InCount: func(b *model.Block) (int, error) {
			c, err := ChartOf(b)
			if err != nil {
				return 0, err
			}
			return len(c.Inputs), nil
		},
		OutCount: func(b *model.Block) (int, error) {
			c, err := ChartOf(b)
			if err != nil {
				return 0, err
			}
			return len(c.Outputs), nil
		},
		Infer: func(b *model.Block, _ []model.DType) ([]model.DType, error) {
			c, err := ChartOf(b)
			if err != nil {
				return nil, err
			}
			types := make([]model.DType, len(c.Outputs))
			for i, o := range c.Outputs {
				types[i] = o.Type
			}
			return types, nil
		},
		Stateful: true,
	})
}

// subsystemIn returns an InCount function for subsystem kinds. extra is the
// number of control ports preceding the data ports (0 for plain subsystems,
// 1 for enabled/triggered/action subsystems).
func subsystemIn(extra int) func(*model.Block) (int, error) {
	return func(b *model.Block) (int, error) {
		if b.Sub == nil {
			return 0, fmt.Errorf("blocks: %s: subsystem has no nested graph", b.Path())
		}
		return len(b.Sub.BlocksOfKind("Inport")) + extra, nil
	}
}

func subsystemOut(b *model.Block) (int, error) {
	if b.Sub == nil {
		return 0, fmt.Errorf("blocks: %s: subsystem has no nested graph", b.Path())
	}
	return len(b.Sub.BlocksOfKind("Outport")), nil
}

// ControlPorts returns the number of control input ports (ports preceding
// the data ports that map to inner Inports) for the given subsystem kind.
func ControlPorts(kind string) int {
	switch kind {
	case "EnabledSubsystem", "TriggeredSubsystem", "ActionSubsystem":
		return 1
	}
	return 0
}

// IsSubsystem reports whether the kind nests a graph.
func IsSubsystem(kind string) bool {
	switch kind {
	case "Subsystem", "EnabledSubsystem", "TriggeredSubsystem", "ActionSubsystem":
		return true
	}
	return false
}

// IsConditional reports whether the subsystem kind executes conditionally
// (and therefore holds its outputs while inactive).
func IsConditional(kind string) bool {
	switch kind {
	case "EnabledSubsystem", "TriggeredSubsystem", "ActionSubsystem":
		return true
	}
	return false
}
