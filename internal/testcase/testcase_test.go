package testcase

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cftcg/internal/model"
)

func layout() model.Layout {
	return model.Layout{
		Fields: []model.Field{
			{Name: "Enable", Type: model.Int8, Offset: 0},
			{Name: "Power", Type: model.Int32, Offset: 1},
			{Name: "Gain", Type: model.Float64, Offset: 5},
		},
		TupleSize: 13,
	}
}

func TestCSVRoundTripHandBuilt(t *testing.T) {
	lay := layout()
	data := make([]byte, 2*lay.TupleSize)
	model.PutRaw(model.Int8, data[0:], model.EncodeInt(model.Int8, -3))
	model.PutRaw(model.Int32, data[1:], model.EncodeInt(model.Int32, 500000))
	model.PutRaw(model.Float64, data[5:], model.EncodeFloat(model.Float64, 2.25))
	model.PutRaw(model.Int8, data[13:], model.EncodeInt(model.Int8, 1))
	model.PutRaw(model.Int32, data[14:], model.EncodeInt(model.Int32, -7))
	model.PutRaw(model.Float64, data[18:], model.EncodeFloat(model.Float64, -0.5))

	csv := ToCSV(lay, data)
	if !strings.Contains(csv, "step,Enable,Power,Gain") {
		t.Fatalf("header missing:\n%s", csv)
	}
	if !strings.Contains(csv, "0,-3,500000,2.25") || !strings.Contains(csv, "1,1,-7,-0.5") {
		t.Fatalf("rows wrong:\n%s", csv)
	}

	back, err := FromCSV(lay, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Error("round trip not byte-identical")
	}
}

// Property: any byte stream (truncated to whole tuples) survives the
// CSV round trip bit-exactly — floats included, because ToCSV prints with
// full precision.
func TestCSVRoundTripProperty(t *testing.T) {
	lay := layout()
	prop := func(seed int64, tuples uint8) bool {
		n := int(tuples%9) + 1
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, n*lay.TupleSize)
		rng.Read(data)
		// Normalize NaN float payloads: NaN never compares equal and a
		// model would never act on the payload bits beyond NaN-ness.
		for i := 0; i < n; i++ {
			off := i*lay.TupleSize + 5
			f := model.DecodeFloat(model.Float64, model.GetRaw(model.Float64, data[off:]))
			if f != f {
				model.PutRaw(model.Float64, data[off:], model.EncodeFloat(model.Float64, 0))
			}
		}
		csv := ToCSV(lay, data)
		back, err := FromCSV(lay, strings.NewReader(csv))
		if err != nil {
			return false
		}
		return string(back) == string(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCSVDiscardsTrailingBytes(t *testing.T) {
	lay := layout()
	data := make([]byte, lay.TupleSize+5) // one tuple + garbage
	csv := ToCSV(lay, data)
	lines := strings.Count(strings.TrimSpace(csv), "\n")
	if lines != 1 { // header + 1 row => 1 newline between them
		t.Errorf("want exactly 1 data row, csv:\n%s", csv)
	}
}

func TestFromCSVRejectsBadHeader(t *testing.T) {
	lay := layout()
	if _, err := FromCSV(lay, strings.NewReader("step,Wrong,Power,Gain\n0,1,2,3\n")); err == nil {
		t.Error("wrong column name accepted")
	}
	if _, err := FromCSV(lay, strings.NewReader("step,Enable\n")); err == nil {
		t.Error("missing columns accepted")
	}
	if _, err := FromCSV(lay, strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := FromCSV(lay, strings.NewReader("step,Enable,Power,Gain\n0,x,2,3\n")); err == nil {
		t.Error("non-numeric value accepted")
	}
}

func TestCaseTuples(t *testing.T) {
	c := Case{Data: make([]byte, 27)}
	if c.Tuples(13) != 2 {
		t.Errorf("tuples: %d, want 2", c.Tuples(13))
	}
	if c.Tuples(0) != 0 {
		t.Error("zero tuple size must not panic")
	}
}

func TestWriteSuiteCSV(t *testing.T) {
	lay := layout()
	s := &Suite{
		Model:  "demo",
		Layout: lay,
		Cases: []Case{
			{Data: make([]byte, lay.TupleSize), Metric: 4},
			{Data: make([]byte, 2*lay.TupleSize), Metric: 9},
		},
	}
	var sb strings.Builder
	if err := WriteSuiteCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "# case") != 2 {
		t.Errorf("case separators missing:\n%s", out)
	}
	if !strings.Contains(out, "metric=9") {
		t.Errorf("metric annotation missing:\n%s", out)
	}
}
