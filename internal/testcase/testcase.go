// Package testcase defines the test-case artifacts CFTCG produces: raw
// binary input streams (the fuzzer's native format) and the CSV rendering
// used to replay cases in Simulink — the paper implements exactly this
// converter "for easy use with its built-in coverage statistics function".
package testcase

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"cftcg/internal/model"
)

// Case is one generated test case: a binary byte stream that the fuzz
// driver splits into per-iteration tuples.
type Case struct {
	Data []byte
	// Found is when the case was emitted, relative to campaign start.
	Found time.Duration
	// Metric is the Iteration Difference Coverage metric of the input.
	Metric int
	// NewBranches counts the campaign-new branch slots this case hit.
	NewBranches int
}

// Tuples returns how many full model iterations the case drives for the
// given tuple size.
func (c Case) Tuples(tupleSize int) int {
	if tupleSize <= 0 {
		return 0
	}
	return len(c.Data) / tupleSize
}

// Suite is an ordered collection of cases for one model.
type Suite struct {
	Model  string
	Layout model.Layout
	Cases  []Case
}

// ToCSV renders one binary case as CSV: a header of inport names and one
// row per model iteration, with each field decoded in its declared type.
// Trailing bytes that cannot fill a whole tuple are discarded, exactly like
// the fuzz driver does.
func ToCSV(lay model.Layout, data []byte) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)

	header := make([]string, 0, len(lay.Fields)+1)
	header = append(header, "step")
	for _, f := range lay.Fields {
		header = append(header, f.Name)
	}
	_ = w.Write(header)

	if lay.TupleSize > 0 {
		n := len(data) / lay.TupleSize
		row := make([]string, len(lay.Fields)+1)
		for i := 0; i < n; i++ {
			row[0] = strconv.Itoa(i)
			base := i * lay.TupleSize
			for j, f := range lay.Fields {
				raw := model.GetRaw(f.Type, data[base+f.Offset:])
				row[j+1] = formatValue(f.Type, raw)
			}
			_ = w.Write(row)
		}
	}
	w.Flush()
	return sb.String()
}

func formatValue(dt model.DType, raw uint64) string {
	if dt.IsFloat() {
		return strconv.FormatFloat(model.DecodeFloat(dt, raw), 'g', -1, 64)
	}
	return strconv.FormatInt(model.DecodeInt(dt, raw), 10)
}

// FromCSV parses a CSV test case (as produced by ToCSV) back into the binary
// stream, validating the header against the layout.
func FromCSV(lay model.Layout, r io.Reader) ([]byte, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("testcase: parsing CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("testcase: empty CSV")
	}
	header := rows[0]
	if len(header) != len(lay.Fields)+1 {
		return nil, fmt.Errorf("testcase: CSV has %d columns, layout needs %d", len(header), len(lay.Fields)+1)
	}
	for i, f := range lay.Fields {
		if header[i+1] != f.Name {
			return nil, fmt.Errorf("testcase: CSV column %d is %q, layout expects %q", i+1, header[i+1], f.Name)
		}
	}
	data := make([]byte, 0, (len(rows)-1)*lay.TupleSize)
	tuple := make([]byte, lay.TupleSize)
	for rowIdx, row := range rows[1:] {
		if len(row) != len(lay.Fields)+1 {
			return nil, fmt.Errorf("testcase: row %d has %d columns", rowIdx+1, len(row))
		}
		for j, f := range lay.Fields {
			raw, err := parseValue(f.Type, row[j+1])
			if err != nil {
				return nil, fmt.Errorf("testcase: row %d field %s: %w", rowIdx+1, f.Name, err)
			}
			model.PutRaw(f.Type, tuple[f.Offset:], raw)
		}
		data = append(data, tuple...)
	}
	return data, nil
}

func parseValue(dt model.DType, s string) (uint64, error) {
	if dt.IsFloat() {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, err
		}
		return model.EncodeFloat(dt, f), nil
	}
	i, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return model.EncodeInt(dt, i), nil
}

// WriteSuiteCSV writes every case of the suite as one concatenated CSV
// stream with "# case N" comment separators.
func WriteSuiteCSV(w io.Writer, s *Suite) error {
	for i, c := range s.Cases {
		if _, err := fmt.Fprintf(w, "# case %d (metric=%d, found=%s)\n", i, c.Metric, c.Found.Round(time.Millisecond)); err != nil {
			return err
		}
		if _, err := io.WriteString(w, ToCSV(s.Layout, c.Data)); err != nil {
			return err
		}
	}
	return nil
}
