package vm

import (
	"fmt"
	"math"
	"testing"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// This file pins the exact value semantics of every opcode over every data
// type, on every backend, against an independent reference implementation
// written in plain Go below. The totalization rules the compiler relies on
// are part of the contract: division by zero yields 0, sqrt/log of
// non-positive inputs yield 0, shift amounts are masked with & 31, and
// boolean results are canonical 0/1 words.

var allDTypes = []model.DType{
	model.Bool, model.Int8, model.UInt8, model.Int16, model.UInt16,
	model.Int32, model.UInt32, model.Float32, model.Float64,
}

// valuesFor returns a boundary battery for one type, as raw words.
func valuesFor(dt model.DType) []uint64 {
	if dt == model.Bool {
		return []uint64{0, 1}
	}
	if dt.IsFloat() {
		vals := []float64{0, 1, -1, 0.5, -2.5, 1e30, -1e-3, math.Inf(1), math.Inf(-1)}
		out := make([]uint64, len(vals))
		for i, v := range vals {
			out[i] = model.EncodeFloat(dt, v)
		}
		return out
	}
	vals := []int64{0, 1, -1, 2, 7, -8, 100, math.MinInt32, math.MaxInt32}
	out := make([]uint64, 0, len(vals))
	for _, v := range vals {
		out = append(out, model.EncodeInt(dt, v))
	}
	return out
}

// refArith is the independent golden model for binary arithmetic.
func refArith(op ir.Op, dt model.DType, a, b uint64) uint64 {
	if dt.IsFloat() {
		x, y := model.DecodeFloat(dt, a), model.DecodeFloat(dt, b)
		var v float64
		switch op {
		case ir.OpAdd:
			v = x + y
		case ir.OpSub:
			v = x - y
		case ir.OpMul:
			v = x * y
		case ir.OpDiv:
			if y == 0 {
				v = 0
			} else {
				v = x / y
			}
		case ir.OpMin:
			v = math.Min(x, y)
		case ir.OpMax:
			v = math.Max(x, y)
		}
		return model.EncodeFloat(dt, v)
	}
	x, y := model.DecodeInt(dt, a), model.DecodeInt(dt, b)
	var v int64
	switch op {
	case ir.OpAdd:
		v = x + y
	case ir.OpSub:
		v = x - y
	case ir.OpMul:
		v = x * y
	case ir.OpDiv:
		if y == 0 {
			v = 0
		} else {
			v = x / y
		}
	case ir.OpMin:
		v = min(x, y)
	case ir.OpMax:
		v = max(x, y)
	}
	return model.EncodeInt(dt, v)
}

func refCompare(op ir.Op, dt model.DType, a, b uint64) uint64 {
	var res bool
	if dt.IsFloat() {
		x, y := model.DecodeFloat(dt, a), model.DecodeFloat(dt, b)
		switch op {
		case ir.OpEq:
			res = x == y
		case ir.OpNe:
			res = x != y
		case ir.OpLt:
			res = x < y
		case ir.OpLe:
			res = x <= y
		case ir.OpGt:
			res = x > y
		case ir.OpGe:
			res = x >= y
		}
	} else {
		x, y := model.DecodeInt(dt, a), model.DecodeInt(dt, b)
		switch op {
		case ir.OpEq:
			res = x == y
		case ir.OpNe:
			res = x != y
		case ir.OpLt:
			res = x < y
		case ir.OpLe:
			res = x <= y
		case ir.OpGt:
			res = x > y
		case ir.OpGe:
			res = x >= y
		}
	}
	if res {
		return 1
	}
	return 0
}

func refBit(op ir.Op, dt model.DType, a, b uint64) uint64 {
	x, y := model.DecodeInt(dt, a), model.DecodeInt(dt, b)
	var v int64
	switch op {
	case ir.OpBitAnd:
		v = x & y
	case ir.OpBitOr:
		v = x | y
	case ir.OpBitXor:
		v = x ^ y
	case ir.OpShl:
		v = x << (uint(y) & 31)
	case ir.OpShr:
		v = x >> (uint(y) & 31)
	}
	return model.EncodeInt(dt, v)
}

func refUnary(op ir.Op, dt model.DType, a uint64) uint64 {
	switch op {
	case ir.OpNeg:
		if dt.IsFloat() {
			return model.EncodeFloat(dt, -model.DecodeFloat(dt, a))
		}
		return model.EncodeInt(dt, -model.DecodeInt(dt, a))
	case ir.OpAbs:
		if dt.IsFloat() {
			return model.EncodeFloat(dt, math.Abs(model.DecodeFloat(dt, a)))
		}
		v := model.DecodeInt(dt, a)
		if v < 0 {
			v = -v
		}
		return model.EncodeInt(dt, v)
	case ir.OpNot:
		return (a & 1) ^ 1
	}
	// Float math functions, totalized.
	x := model.Decode(dt, a)
	var v float64
	switch op {
	case ir.OpSqrt:
		if x < 0 {
			v = 0
		} else {
			v = math.Sqrt(x)
		}
	case ir.OpExp:
		v = math.Exp(x)
	case ir.OpLog:
		if x <= 0 {
			v = 0
		} else {
			v = math.Log(x)
		}
	case ir.OpSin:
		v = math.Sin(x)
	case ir.OpCos:
		v = math.Cos(x)
	case ir.OpTan:
		v = math.Tan(x)
	case ir.OpFloor:
		v = math.Floor(x)
	case ir.OpCeil:
		v = math.Ceil(x)
	case ir.OpRound:
		v = math.Round(x)
	case ir.OpTrunc:
		v = math.Trunc(x)
	}
	return model.Encode(dt, v)
}

// unProgram wraps one unary instruction: out0 = op(in0).
func unProgram(op ir.Op, dt, dt2 model.DType) *ir.Program {
	var regs int32
	a := ir.NewAsm(&regs)
	x := a.LoadIn(dt2, 0)
	dst := a.Reg()
	a.Emit(ir.Instr{Op: op, DT: dt, DT2: dt2, Dst: dst, A: x})
	a.StoreOut(0, dst)
	a.Halt()
	init := ir.NewAsm(&regs)
	init.Halt()
	return &ir.Program{
		Name: "un", Init: init.Instrs, Step: a.Instrs, NumRegs: int(regs),
		In:  []model.Field{{Name: "x", Type: dt2}},
		Out: []model.Field{{Name: "o", Type: dt}},
	}
}

func selectProgram(dt model.DType) *ir.Program {
	var regs int32
	a := ir.NewAsm(&regs)
	c := a.LoadIn(model.Bool, 0)
	x := a.LoadIn(dt, 1)
	y := a.LoadIn(dt, 2)
	a.StoreOut(0, a.Select(dt, c, x, y))
	a.Halt()
	init := ir.NewAsm(&regs)
	init.Halt()
	return &ir.Program{
		Name: "sel", Init: init.Instrs, Step: a.Instrs, NumRegs: int(regs),
		In: []model.Field{
			{Name: "c", Type: model.Bool},
			{Name: "x", Type: dt, Offset: 1},
			{Name: "y", Type: dt, Offset: 1 + dt.Size()},
		},
		Out: []model.Field{{Name: "o", Type: dt}},
	}
}

// stepOnce runs one step of p on backend mk and returns out[0].
func stepOnce(t *testing.T, mk makeBackend, p *ir.Program, in []uint64) uint64 {
	t.Helper()
	m := mk(p, nil)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(in); err != nil {
		t.Fatal(err)
	}
	return m.Out()[0]
}

// TestOpcodeSemanticsMatrix runs the exhaustive op x dtype x boundary-value
// battery on every backend and checks each result word against the golden
// model, then asserts the matrix visited every opcode the IR defines.
func TestOpcodeSemanticsMatrix(t *testing.T) {
	tested := map[ir.Op]bool{}
	mark := func(ops ...ir.Op) {
		for _, op := range ops {
			tested[op] = true
		}
	}
	// Structural and control opcodes are semantically pinned by the
	// dedicated tests in this package; record them so the completeness check
	// below documents where each opcode's coverage lives.
	mark(ir.OpNop, ir.OpConst, ir.OpMov, ir.OpLoadIn, ir.OpStoreOut,
		ir.OpLoadState, ir.OpStoreState, ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot,
		ir.OpProbe, ir.OpCondProbe, ir.OpHalt, ir.OpCast, ir.OpTruth)

	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		check := func(p *ir.Program, in []uint64, want uint64, label string) {
			t.Helper()
			if got := stepOnce(t, mk, p, in); got != want {
				t.Errorf("%s: got %#x, want %#x", label, got, want)
			}
		}

		binOps := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax}
		cmpOps := []ir.Op{ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe}
		bitOps := []ir.Op{ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr}
		unOps := []ir.Op{ir.OpNeg, ir.OpAbs}
		mathOps := []ir.Op{ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos,
			ir.OpTan, ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc}

		for _, dt := range allDTypes {
			vals := valuesFor(dt)
			if dt != model.Bool {
				// Bool arithmetic has no modelled source construct; the
				// backends only owe each other agreement there, which the
				// differential rig enforces.
				for _, op := range binOps {
					mark(op)
					p := binProgram(op, dt)
					for _, x := range vals {
						for _, y := range vals {
							check(p, []uint64{x, y}, refArith(op, dt, x, y),
								fmt.Sprintf("%s %s(%#x,%#x)", dt, op, x, y))
						}
					}
				}
				for _, op := range unOps {
					mark(op)
					p := unProgram(op, dt, dt)
					for _, x := range vals {
						check(p, []uint64{x}, refUnary(op, dt, x),
							fmt.Sprintf("%s %s(%#x)", dt, op, x))
					}
				}
			}
			for _, op := range cmpOps {
				mark(op)
				p := binProgram(op, dt)
				for _, x := range vals {
					for _, y := range vals {
						check(p, []uint64{x, y}, refCompare(op, dt, x, y),
							fmt.Sprintf("%s %s(%#x,%#x)", dt, op, x, y))
					}
				}
			}
			if dt.IsInteger() {
				for _, op := range bitOps {
					mark(op)
					p := binProgram(op, dt)
					for _, x := range vals {
						for _, y := range vals {
							check(p, []uint64{x, y}, refBit(op, dt, x, y),
								fmt.Sprintf("%s %s(%#x,%#x)", dt, op, x, y))
						}
					}
				}
			}
			if dt.IsFloat() {
				for _, op := range mathOps {
					mark(op)
					p := unProgram(op, dt, dt)
					for _, x := range vals {
						check(p, []uint64{x}, refUnary(op, dt, x),
							fmt.Sprintf("%s %s(%#x)", dt, op, x))
					}
				}
			}
			// Select with canonical and sloppy (non-0/1) condition words.
			mark(ir.OpSelect)
			p := selectProgram(dt)
			for _, c := range []uint64{0, 1, 2, 1 << 40} {
				want := vals[len(vals)-1]
				if c != 0 {
					want = vals[0]
				}
				check(p, []uint64{c, vals[0], vals[len(vals)-1]}, want,
					fmt.Sprintf("%s select(c=%#x)", dt, c))
			}
		}

		// Bool logic canonicalizes any non-zero low bit pattern to 0/1.
		for _, op := range []ir.Op{ir.OpAnd, ir.OpOr, ir.OpXor} {
			mark(op)
			p := binProgram(op, model.Bool)
			for _, x := range []uint64{0, 1} {
				for _, y := range []uint64{0, 1} {
					var want uint64
					switch op {
					case ir.OpAnd:
						want = x & y
					case ir.OpOr:
						want = x | y
					case ir.OpXor:
						want = x ^ y
					}
					check(p, []uint64{x, y}, want, fmt.Sprintf("bool %s(%d,%d)", op, x, y))
				}
			}
		}
		mark(ir.OpNot)
		pn := unProgram(ir.OpNot, model.Bool, model.Bool)
		check(pn, []uint64{0}, 1, "not(0)")
		check(pn, []uint64{1}, 0, "not(1)")

		// Truth over every source type: any non-zero value in the type's
		// domain is true; words that are zero after masking are false.
		for _, dt2 := range allDTypes[1:] {
			p := unProgram(ir.OpTruth, model.Bool, dt2)
			for _, x := range valuesFor(dt2) {
				var want uint64
				if model.Truth(dt2, x) {
					want = 1
				}
				check(p, []uint64{x}, want, fmt.Sprintf("truth[%s](%#x)", dt2, x))
			}
		}

		// Casts across every ordered type pair, pinned to model.Cast.
		for _, from := range allDTypes {
			for _, to := range allDTypes {
				if from == to {
					continue
				}
				p := unProgram(ir.OpCast, to, from)
				for _, x := range valuesFor(from) {
					check(p, []uint64{x}, model.Cast(to, from, x),
						fmt.Sprintf("cast %s->%s(%#x)", from, to, x))
				}
			}
		}
	})

	for op := ir.OpNop; op <= ir.OpHalt; op++ {
		if !tested[op] {
			t.Errorf("opcode %s missing from the semantics matrix", op)
		}
	}
}

// TestTotalizationGoldens pins the headline totalization rules with literal
// expected values, independent of any reference implementation.
func TestTotalizationGoldens(t *testing.T) {
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		// x / 0 == 0 for every type.
		for _, dt := range allDTypes[1:] {
			p := binProgram(ir.OpDiv, dt)
			if got := stepOnce(t, mk, p, []uint64{model.Encode(dt, 7), 0}); got != 0 {
				t.Errorf("%s: 7/0 = %#x, want 0", dt, got)
			}
		}
		// sqrt(-4) == 0, log(-4) == 0, log(0) == 0.
		neg := model.EncodeFloat(model.Float64, -4)
		if got := stepOnce(t, mk, unProgram(ir.OpSqrt, model.Float64, model.Float64), []uint64{neg}); got != 0 {
			t.Errorf("sqrt(-4) = %#x, want 0", got)
		}
		if got := stepOnce(t, mk, unProgram(ir.OpLog, model.Float64, model.Float64), []uint64{neg}); got != 0 {
			t.Errorf("log(-4) = %#x, want 0", got)
		}
		if got := stepOnce(t, mk, unProgram(ir.OpLog, model.Float64, model.Float64), []uint64{0}); got != 0 {
			t.Errorf("log(0) = %#x, want 0", got)
		}
		// Shift amounts mask to 5 bits: 1 << 33 == 1 << 1.
		p := binProgram(ir.OpShl, model.UInt32)
		got := stepOnce(t, mk, p, []uint64{model.EncodeInt(model.UInt32, 1), model.EncodeInt(model.UInt32, 33)})
		if model.DecodeInt(model.UInt32, got) != 2 {
			t.Errorf("1 << 33 = %#x, want 2 (shift & 31)", got)
		}
		// Comparison results are canonical words.
		pq := binProgram(ir.OpLt, model.Int32)
		if got := stepOnce(t, mk, pq, []uint64{model.EncodeInt(model.Int32, 1), model.EncodeInt(model.Int32, 2)}); got != 1 {
			t.Errorf("1<2 = %#x, want canonical 1", got)
		}
	})
}
