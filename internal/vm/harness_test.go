package vm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// makeBackend builds one execution engine for a program. The shared VM tests
// and the differential rig are written against this constructor so every
// semantic test runs against every backend.
type makeBackend func(p *ir.Program, rec *coverage.Recorder) Backend

// backendCase names one backend under test. "batch" is a single-lane Batch
// driven through its Lane adapter — the SoA data path with the scalar
// surface.
type backendCase struct {
	name string
	make makeBackend
}

func allBackends() []backendCase {
	return []backendCase{
		{"switch", func(p *ir.Program, rec *coverage.Recorder) Backend {
			return New(p, rec)
		}},
		{"threaded", func(p *ir.Program, rec *coverage.Recorder) Backend {
			return NewThreaded(p, rec)
		}},
		{"batch", func(p *ir.Program, rec *coverage.Recorder) Backend {
			var recs []*coverage.Recorder
			if rec != nil {
				recs = []*coverage.Recorder{rec}
			}
			return NewBatch(CompileThreaded(p), 1, recs).Lane(0)
		}},
	}
}

// forEachBackend runs a semantics test once per backend as subtests, so a
// divergence names the engine that broke.
func forEachBackend(t *testing.T, fn func(t *testing.T, mk makeBackend)) {
	t.Helper()
	for _, bc := range allBackends() {
		t.Run(bc.name, func(t *testing.T) { fn(t, bc.make) })
	}
}

// planFor mirrors a generated program's decision spec into a coverage plan,
// numbering conditions globally in declaration order exactly as GenProgram
// assigns probe IDs.
func planFor(decs []ir.GenDecision) *coverage.Plan {
	p := &coverage.Plan{ModelName: "gen"}
	for i, d := range decs {
		dec := coverage.Decision{
			ID:          i,
			Label:       fmt.Sprintf("d%d", i),
			NumOutcomes: d.NumOutcomes,
			OutcomeBase: p.NumBranches,
			Boolean:     d.NumOutcomes == 2,
		}
		p.NumBranches += d.NumOutcomes
		for s := 0; s < d.Conds; s++ {
			cid := len(p.Conds)
			p.Conds = append(p.Conds, coverage.Cond{
				ID: cid, DecisionID: i, Slot: s,
				Label:      fmt.Sprintf("d%dc%d", i, s),
				BranchBase: p.NumBranches,
			})
			p.NumBranches += 2
			dec.CondIDs = append(dec.CondIDs, cid)
		}
		p.Decisions = append(p.Decisions, dec)
	}
	return p
}

// genInputs draws one input tuple: mostly canonical encodings, sometimes a
// raw 64-bit pattern — backends must agree on non-canonical words too, since
// every consumer masks on use.
func genInputs(r *rand.Rand, fields []model.Field) []uint64 {
	in := make([]uint64, len(fields))
	for i, f := range fields {
		switch r.Intn(8) {
		case 0:
			in[i] = r.Uint64()
		case 1:
			in[i] = 0
		case 2:
			in[i] = model.Encode(f.Type, 1)
		case 3:
			in[i] = model.Encode(f.Type, -1)
		default:
			if f.Type.IsFloat() {
				in[i] = model.Encode(f.Type, r.NormFloat64()*100)
			} else {
				in[i] = model.EncodeInt(f.Type, int64(r.Intn(512)-256))
			}
		}
	}
	return in
}

// sameErr checks that two backends failed (or succeeded) identically,
// including every HangError attribution field.
func sameErr(refErr, gotErr error) string {
	if (refErr == nil) != (gotErr == nil) {
		return fmt.Sprintf("error mismatch: reference %v, got %v", refErr, gotErr)
	}
	if refErr == nil {
		return ""
	}
	var rh, gh *HangError
	if !errors.As(refErr, &rh) || !errors.As(gotErr, &gh) {
		return fmt.Sprintf("error types: reference %T, got %T", refErr, gotErr)
	}
	if *rh != *gh {
		return fmt.Sprintf("hang mismatch: reference %+v, got %+v", *rh, *gh)
	}
	return ""
}

// diffWords reports the first index where two word vectors differ.
func diffWords(what string, ref, got []uint64) string {
	if len(ref) != len(got) {
		return fmt.Sprintf("%s length: reference %d, got %d", what, len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			return fmt.Sprintf("%s[%d]: reference %#x, got %#x", what, i, ref[i], got[i])
		}
	}
	return ""
}

func diffBytes(what string, ref, got []uint8) string {
	if len(ref) != len(got) {
		return fmt.Sprintf("%s length: reference %d, got %d", what, len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			return fmt.Sprintf("%s[%d]: reference %d, got %d", what, i, ref[i], got[i])
		}
	}
	return ""
}

// regsOf reaches into a backend for its register file. Registers are not
// part of the Backend surface, but every backend executes the same
// instruction stream, so the files must be bit-identical after every call —
// comparing them makes the oracle sensitive to a wrong destination or a
// swapped operand even when the value never flows to an output.
func regsOf(b Backend) []uint64 {
	switch v := b.(type) {
	case *Machine:
		return v.regs
	case *Threaded:
		return v.s.regs
	case *batchLane:
		return v.b.sts[v.i].regs
	}
	return nil
}

// compareAfterCall checks every observable a Backend exposes after one Init
// or Step call: the error (with hang attribution), fuel consumed, outputs,
// persistent state, the raw register file, and — when recorders are
// attached — the per-step and cumulative coverage arrays.
func compareAfterCall(t *testing.T, name string, ref, got Backend, refErr, gotErr error, refRec, gotRec *coverage.Recorder) {
	t.Helper()
	if msg := sameErr(refErr, gotErr); msg != "" {
		t.Fatalf("%s: %s", name, msg)
	}
	if ru, gu := ref.LastFuelUsed(), got.LastFuelUsed(); ru != gu {
		t.Fatalf("%s: LastFuelUsed: reference %d, got %d", name, ru, gu)
	}
	if msg := diffWords("out", ref.Out(), got.Out()); msg != "" {
		t.Fatalf("%s: %s", name, msg)
	}
	if msg := diffWords("state", ref.State(), got.State()); msg != "" {
		t.Fatalf("%s: %s", name, msg)
	}
	if rr, gr := regsOf(ref), regsOf(got); rr != nil && gr != nil {
		if msg := diffWords("regs", rr, gr); msg != "" {
			t.Fatalf("%s: %s", name, msg)
		}
	}
	if refRec != nil {
		if msg := diffBytes("Curr", refRec.Curr, gotRec.Curr); msg != "" {
			t.Fatalf("%s: %s", name, msg)
		}
		if msg := diffBytes("Total", refRec.Total, gotRec.Total); msg != "" {
			t.Fatalf("%s: %s", name, msg)
		}
	}
}
