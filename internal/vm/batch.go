package vm

import (
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
)

// Batch runs many program instances ("lanes") through compiled threaded code
// with structure-of-arrays register/state/output files: one contiguous slab
// per file, lane-major, so resetting every lane is a single memclr and the
// per-lane views are stride offsets into warm cache lines. Lanes may run
// different programs (the mutation runner uses one lane per mutant), in which
// case the strides are the maximum over all lanes.
//
// Batch is not itself a Backend — it is N of them. Lane(i) adapts one lane to
// the Backend interface for the differential rig and the shared VM tests.
type Batch struct {
	codes []*Code
	sts   []execState
	used  []int64
	// init tracks whether the lane has run since the last ResetAll, so
	// Init can skip the state/out clear on already-zero slabs.
	dirty []bool

	regs, state, out []uint64
	rStride          int
	sStride          int
	oStride          int
	fuel             int64
}

// NewBatch creates a batch executing code on every lane. recs supplies an
// optional per-lane Recorder: nil for none, else len(recs) == lanes.
func NewBatch(code *Code, lanes int, recs []*coverage.Recorder) *Batch {
	codes := make([]*Code, lanes)
	for i := range codes {
		codes[i] = code
	}
	return NewBatchMulti(codes, recs)
}

// NewBatchMulti creates a batch with one program per lane (e.g. one mutant
// per lane). recs is nil or one Recorder per lane.
func NewBatchMulti(codes []*Code, recs []*coverage.Recorder) *Batch {
	b := &Batch{
		codes: codes,
		sts:   make([]execState, len(codes)),
		used:  make([]int64, len(codes)),
		dirty: make([]bool, len(codes)),
		fuel:  DefaultFuel,
	}
	for _, c := range codes {
		p := c.prog
		b.rStride = max(b.rStride, p.NumRegs)
		b.sStride = max(b.sStride, p.NumState)
		b.oStride = max(b.oStride, len(p.Out))
	}
	n := len(codes)
	b.regs = make([]uint64, n*b.rStride)
	b.state = make([]uint64, n*b.sStride)
	b.out = make([]uint64, n*b.oStride)
	for i := range b.sts {
		p := codes[i].prog
		b.sts[i] = execState{
			regs:  b.regs[i*b.rStride : i*b.rStride+p.NumRegs],
			state: b.state[i*b.sStride : i*b.sStride+p.NumState],
			out:   b.out[i*b.oStride : i*b.oStride+len(p.Out)],
		}
		if recs != nil {
			b.sts[i].rec = recs[i]
		}
	}
	return b
}

// Lanes returns the number of lanes.
func (b *Batch) Lanes() int { return len(b.codes) }

// SetFuel sets the per-call instruction budget shared by all lanes
// (n <= 0 restores DefaultFuel).
func (b *Batch) SetFuel(n int64) {
	if n <= 0 {
		n = DefaultFuel
	}
	b.fuel = n
}

// Fuel returns the shared per-call instruction budget.
func (b *Batch) Fuel() int64 { return b.fuel }

// ResetAll zeroes every lane's registers, state and outputs in three memclr
// passes — equivalent to constructing fresh machines on every lane.
func (b *Batch) ResetAll() {
	clear(b.regs)
	clear(b.state)
	clear(b.out)
	clear(b.used)
	clear(b.dirty)
}

// Init resets one lane's state and outputs (registers persist, exactly like
// Machine.Init) and runs its init function.
func (b *Batch) Init(lane int) error {
	s := &b.sts[lane]
	if b.dirty[lane] {
		clear(s.state)
		clear(s.out)
	}
	b.dirty[lane] = true
	c := b.codes[lane]
	return b.exec(lane, "init", c.init, c.initSlow)
}

// Step runs one model iteration on one lane with the given input tuple.
func (b *Batch) Step(lane int, in []uint64) error {
	b.dirty[lane] = true
	b.sts[lane].in = in
	c := b.codes[lane]
	return b.exec(lane, "step", c.step, c.stepSlow)
}

func (b *Batch) exec(lane int, fn string, ms []mop, slow []opFn) error {
	left, hangPC, hung := runMops(ms, slow, &b.sts[lane], b.fuel)
	if hung {
		b.used[lane] = b.fuel
		return &HangError{Func: fn, PC: hangPC, Fuel: b.fuel, Site: b.codes[lane].prog.LoopSiteFor(fn, hangPC)}
	}
	b.used[lane] = b.fuel - left
	return nil
}

// Out returns one lane's output view (valid until the next ResetAll).
func (b *Batch) Out(lane int) []uint64 { return b.sts[lane].out }

// State returns one lane's persistent state view.
func (b *Batch) State(lane int) []uint64 { return b.sts[lane].state }

// LastFuelUsed returns the instructions the lane's most recent Init or Step
// consumed.
func (b *Batch) LastFuelUsed(lane int) int64 { return b.used[lane] }

// Program returns the program lane executes.
func (b *Batch) Program(lane int) *ir.Program { return b.codes[lane].prog }

// Lane adapts one batch lane to the Backend interface so the differential
// rig and the shared VM tests can drive batch execution through the same
// surface as the scalar backends. SetFuel on a lane sets the whole batch's
// shared budget.
func (b *Batch) Lane(i int) Backend { return &batchLane{b: b, i: i} }

type batchLane struct {
	b *Batch
	i int
}

func (l *batchLane) Init() error            { return l.b.Init(l.i) }
func (l *batchLane) Step(in []uint64) error { return l.b.Step(l.i, in) }
func (l *batchLane) Out() []uint64          { return l.b.Out(l.i) }
func (l *batchLane) State() []uint64        { return l.b.State(l.i) }
func (l *batchLane) SetFuel(n int64)        { l.b.SetFuel(n) }
func (l *batchLane) Fuel() int64            { return l.b.Fuel() }
func (l *batchLane) LastFuelUsed() int64    { return l.b.LastFuelUsed(l.i) }
func (l *batchLane) Program() *ir.Program   { return l.b.Program(l.i) }
