package vm

import (
	"fmt"
	"math"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// The threaded backend compiles a program once, pre-decoding every
// instruction into two parallel forms:
//
//   - a flat micro-op stream (mop.go) the dispatch loop runs: operands
//     widened, opcode × data type monomorphized into one dense kind,
//     width constants (mask/shift/order-bias) precomputed, and the hot
//     instruction pairs the lowering emits fused into superinstructions
//     (const+arith, cmp+jmpIf, loadState+arith+storeState);
//   - a slice of Go closures, one per instruction, each a pre-bound unfused
//     executor. They serve rare shapes the stream calls through (casts,
//     Float32 math, ill-typed ops) and — crucially — the fuel-exhaustion
//     path: when the budget dies inside a fused span, the affordable prefix
//     replays through the closures so partial side effects and the HangError
//     pc match the reference switch interpreter exactly.
//
// Fuel is accounted centrally in the dispatch loop: each micro-op carries the
// number of source instructions it covers (1, or the span for fused), charged
// before execution in the same check-before-execute order as the reference.
//
// The compiled Code is immutable and shared: one compile serves any number
// of Threaded machines and Batch lanes.

// execState is the mutable register/state/output file a compiled program
// executes against. Threaded owns one; Batch owns one per lane, backed by
// structure-of-arrays slabs.
type execState struct {
	regs  []uint64
	state []uint64
	out   []uint64
	in    []uint64
	rec   *coverage.Recorder
}

// opFn executes one (possibly fused) instruction and returns the next pc.
// Returning len(code) ends the function cleanly.
type opFn func(s *execState) int

// Code is a program compiled for threaded dispatch.
type Code struct {
	prog *ir.Program

	// init/step are the pre-decoded micro-op streams with superinstructions
	// installed at fusion heads; slow keeps the unfused closure for every pc
	// (fuel-exhaustion replay, see the package comment).
	init     []mop
	initSlow []opFn
	step     []mop
	stepSlow []opFn

	fused int // superinstructions formed across both functions
}

// Program returns the program this code was compiled from.
func (c *Code) Program() *ir.Program { return c.prog }

// Fused returns how many superinstructions the compiler formed — tests use
// it to assert the fusion patterns actually fire.
func (c *Code) Fused() int { return c.fused }

// CompileThreaded translates a program into threaded code. The result is
// immutable and safe to share across machines and batch lanes.
//
// The program must be valid: the compiled stream addresses the register
// file without per-access bounds checks, relying on Validate's range checks
// as the one-time proof. An invalid program is a caller bug, reported by
// panic rather than by memory corruption at execution time.
func CompileThreaded(p *ir.Program) *Code {
	if err := p.Validate(); err != nil {
		panic("vm: CompileThreaded on invalid program: " + err.Error())
	}
	c := &Code{prog: p}
	var nf int
	c.init, c.initSlow, nf = compileFunc(p.Init)
	c.fused += nf
	c.step, c.stepSlow, nf = compileFunc(p.Step)
	c.fused += nf
	return c
}

// Threaded executes one program instance through compiled closures. It is a
// drop-in Backend: same fuel accounting, HangError attribution, probe
// recording and output/state surfaces as the reference Machine.
type Threaded struct {
	code *Code
	s    execState
	fuel int64
	used int64
}

var _ Backend = (*Threaded)(nil)

// NewThreaded compiles the program and returns a threaded machine. rec may
// be nil to run without coverage collection.
func NewThreaded(p *ir.Program, rec *coverage.Recorder) *Threaded {
	return NewThreadedFromCode(CompileThreaded(p), rec)
}

// NewThreadedFromCode returns a threaded machine over already-compiled code
// (sharing one compile across machines).
func NewThreadedFromCode(c *Code, rec *coverage.Recorder) *Threaded {
	p := c.prog
	return &Threaded{
		code: c,
		s: execState{
			regs:  make([]uint64, p.NumRegs),
			state: make([]uint64, p.NumState),
			out:   make([]uint64, len(p.Out)),
			rec:   rec,
		},
		fuel: DefaultFuel,
	}
}

// SetFuel sets the per-call instruction budget; n <= 0 restores DefaultFuel.
func (t *Threaded) SetFuel(n int64) {
	if n <= 0 {
		n = DefaultFuel
	}
	t.fuel = n
}

// Fuel returns the per-call instruction budget.
func (t *Threaded) Fuel() int64 { return t.fuel }

// LastFuelUsed returns how many instructions the most recent Init or Step
// call executed.
func (t *Threaded) LastFuelUsed() int64 { return t.used }

// Program returns the machine's program.
func (t *Threaded) Program() *ir.Program { return t.code.prog }

// Out returns the output values of the last step (reused across steps).
func (t *Threaded) Out() []uint64 { return t.s.out }

// State exposes the persistent state vector.
func (t *Threaded) State() []uint64 { return t.s.state }

// Init resets the machine and runs the program's init function.
func (t *Threaded) Init() error {
	clear(t.s.state)
	clear(t.s.out)
	return t.exec("init", t.code.init, t.code.initSlow)
}

// Step runs one model iteration with the given input tuple.
func (t *Threaded) Step(in []uint64) error {
	t.s.in = in
	return t.exec("step", t.code.step, t.code.stepSlow)
}

func (t *Threaded) exec(fn string, ms []mop, slow []opFn) error {
	left, hangPC, hung := runMops(ms, slow, &t.s, t.fuel)
	if hung {
		t.used = t.fuel
		return &HangError{Func: fn, PC: hangPC, Fuel: t.fuel, Site: t.code.prog.LoopSiteFor(fn, hangPC)}
	}
	t.used = t.fuel - left
	return nil
}

// compileFunc translates one function body: an unfused closure plus a
// pre-decoded micro-op per pc, then superinstructions installed at fusion
// heads where the covered pcs are not jump targets.
func compileFunc(code []ir.Instr) (ms []mop, slow []opFn, fused int) {
	n := len(code)
	slow = make([]opFn, n)
	ms = make([]mop, n)
	for pc := range code {
		slow[pc] = compileOp(&code[pc], pc, n)
		ms[pc] = compileMop(&code[pc], pc, n)
	}
	fused = fuseMops(code, ms)
	blockCosts(code, ms)
	// Sentinel: every exit path lands here — sequential fall-through, an
	// explicit halt's jump, or a branch to pc == len(code). Its zero cost
	// can never trip the fuel check, so the dispatch loop needs neither a
	// pc < n test nor a bounds check on the mop fetch.
	ms = append(ms, mop{kind: mHalt})
	return ms, slow, fused
}

// jumpTargets marks every pc some jump in the function lands on.
func jumpTargets(code []ir.Instr) []bool {
	t := make([]bool, len(code)+1)
	for i := range code {
		switch code[i].Op {
		case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
			if code[i].Imm <= uint64(len(code)) {
				t[code[i].Imm] = true
			}
		}
	}
	return t
}

func isArith(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax:
		return true
	}
	return false
}

func isCmp(op ir.Op) bool {
	switch op {
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return true
	}
	return false
}

// jumpTo resolves a jump immediate at compile time. Targets beyond the
// function end fall off cleanly (Validate allows target == len); a target
// that does not fit an int cannot be represented and panics at compile like
// the reference interpreter would at run time.
func jumpTo(imm uint64, n int) int {
	t := int(imm)
	if t < 0 {
		panic(fmt.Sprintf("vm: jump target %d overflows", imm))
	}
	if t > n {
		t = n
	}
	return t
}

// compileOp translates one instruction into a closure with pre-decoded
// operands and a monomorphized body. end is the function length (the
// clean-exit pc for OpHalt).
func compileOp(ins *ir.Instr, pc, end int) opFn {
	next := pc + 1
	switch ins.Op {
	case ir.OpNop:
		return func(s *execState) int { return next }

	case ir.OpConst:
		dst, imm := int(ins.Dst), ins.Imm
		return func(s *execState) int {
			s.regs[dst] = imm
			return next
		}
	case ir.OpMov:
		dst, a := int(ins.Dst), int(ins.A)
		return func(s *execState) int {
			s.regs[dst] = s.regs[a]
			return next
		}

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax,
		ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		f := binFn(ins.Op, ins.DT)
		dst, a, b := int(ins.Dst), int(ins.A), int(ins.B)
		return func(s *execState) int {
			s.regs[dst] = f(s.regs[a], s.regs[b])
			return next
		}

	case ir.OpNeg, ir.OpAbs,
		ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
		ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		f := unFn(ins.Op, ins.DT)
		dst, a := int(ins.Dst), int(ins.A)
		return func(s *execState) int {
			s.regs[dst] = f(s.regs[a])
			return next
		}

	case ir.OpAnd:
		dst, a, b := int(ins.Dst), int(ins.A), int(ins.B)
		return func(s *execState) int {
			s.regs[dst] = s.regs[a] & s.regs[b] & 1
			return next
		}
	case ir.OpOr:
		dst, a, b := int(ins.Dst), int(ins.A), int(ins.B)
		return func(s *execState) int {
			s.regs[dst] = (s.regs[a] | s.regs[b]) & 1
			return next
		}
	case ir.OpXor:
		dst, a, b := int(ins.Dst), int(ins.A), int(ins.B)
		return func(s *execState) int {
			s.regs[dst] = (s.regs[a] ^ s.regs[b]) & 1
			return next
		}
	case ir.OpNot:
		dst, a := int(ins.Dst), int(ins.A)
		return func(s *execState) int {
			s.regs[dst] = (s.regs[a] & 1) ^ 1
			return next
		}

	case ir.OpTruth:
		dst, a := int(ins.Dst), int(ins.A)
		switch ins.DT2 {
		case model.Float64:
			return func(s *execState) int {
				s.regs[dst] = b2u(math.Float64frombits(s.regs[a]) != 0)
				return next
			}
		case model.Float32:
			return func(s *execState) int {
				s.regs[dst] = b2u(math.Float32frombits(uint32(s.regs[a])) != 0)
				return next
			}
		}
		// Non-float truth is "any payload bit set": sign extension cannot
		// zero a nonzero value, so the masked raw decides. Invalid types
		// decode to 0 (mask 0), like model.DecodeInt.
		mask := maskOf(ins.DT2)
		return func(s *execState) int {
			s.regs[dst] = b2u(s.regs[a]&mask != 0)
			return next
		}
	case ir.OpSelect:
		dst, a, b, c := int(ins.Dst), int(ins.A), int(ins.B), int(ins.C)
		return func(s *execState) int {
			if s.regs[a] != 0 {
				s.regs[dst] = s.regs[b]
			} else {
				s.regs[dst] = s.regs[c]
			}
			return next
		}
	case ir.OpCast:
		dst, a := int(ins.Dst), int(ins.A)
		to, from := ins.DT, ins.DT2
		return func(s *execState) int {
			s.regs[dst] = model.Cast(to, from, s.regs[a])
			return next
		}

	case ir.OpLoadIn:
		dst, idx := int(ins.Dst), int(ins.Imm)
		return func(s *execState) int {
			s.regs[dst] = s.in[idx]
			return next
		}
	case ir.OpStoreOut:
		a, idx := int(ins.A), int(ins.Imm)
		return func(s *execState) int {
			s.out[idx] = s.regs[a]
			return next
		}
	case ir.OpLoadState:
		dst, idx := int(ins.Dst), int(ins.Imm)
		return func(s *execState) int {
			s.regs[dst] = s.state[idx]
			return next
		}
	case ir.OpStoreState:
		a, idx := int(ins.A), int(ins.Imm)
		return func(s *execState) int {
			s.state[idx] = s.regs[a]
			return next
		}

	case ir.OpJmp:
		tgt := jumpTo(ins.Imm, end)
		return func(s *execState) int { return tgt }
	case ir.OpJmpIf:
		a, tgt := int(ins.A), jumpTo(ins.Imm, end)
		return func(s *execState) int {
			if s.regs[a] != 0 {
				return tgt
			}
			return next
		}
	case ir.OpJmpIfNot:
		a, tgt := int(ins.A), jumpTo(ins.Imm, end)
		return func(s *execState) int {
			if s.regs[a] == 0 {
				return tgt
			}
			return next
		}

	case ir.OpProbe:
		dec, out := int(ins.A), int(ins.B)
		return func(s *execState) int {
			if s.rec != nil {
				s.rec.Outcome(dec, out)
			}
			return next
		}
	case ir.OpCondProbe:
		id, b := int(ins.A), int(ins.B)
		return func(s *execState) int {
			if s.rec != nil {
				s.rec.Cond(id, s.regs[b] != 0)
			}
			return next
		}

	case ir.OpHalt:
		return func(s *execState) int { return end }
	}
	// Unknown opcodes execute as no-ops, exactly like the reference
	// interpreter's switch falling through every case.
	return func(s *execState) int { return next }
}

// --- monomorphized value functions ------------------------------------------
//
// Each builder runs the opcode × data-type dispatch once at compile time and
// returns a closure whose body is the bare decode/op/encode sequence over
// captured width constants. The specialized paths are transcriptions of
// arith/compare/unaryMath from the reference interpreter — the differential
// rig and the semantics matrix test hold them to bit equality. Bool
// arithmetic and ill-typed combinations (which the verifier rejects but
// random or mutated programs may contain) fall back to the reference helpers
// themselves.
//
// Width tricks the integer paths rely on (w = bit width, mask = 2^w-1):
//   - add/sub/mul/neg and the bitwise ops are determined by the low w bits,
//     so one masked uint64 computation serves signed and unsigned alike;
//   - eq/ne compare masked raws (sign extension is injective);
//   - shift amounts take only the low 5 bits of the raw (w >= 8 > 5), so
//     `raw & 31` equals `uint(decoded) & 31`;
//   - div/min/max/shr and the ordered compares decode for real: sign-extend
//     (signed) or mask (unsigned).

// maskOf returns the payload mask of an integer-like type: 1 for Bool (one
// payload bit), 2^w-1 for w-bit integers, 0 for types with no integer
// payload (matching model.DecodeInt's 0 for them).
func maskOf(dt model.DType) uint64 {
	if dt == model.Bool {
		return 1
	}
	if !dt.IsInteger() {
		return 0
	}
	return uint64(1)<<uint(dt.Size()*8) - 1
}

// binFn builds the value function of a binary arithmetic, bitwise or
// relational op.
func binFn(op ir.Op, dt model.DType) func(a, b uint64) uint64 {
	if isArith(op) {
		return arithFn(op, dt)
	}
	if isCmp(op) {
		return compareFn(op, dt)
	}
	return bitFn(op, dt)
}

func arithFn(op ir.Op, dt model.DType) func(a, b uint64) uint64 {
	switch dt {
	case model.Float64:
		switch op {
		case ir.OpAdd:
			return func(a, b uint64) uint64 {
				return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
			}
		case ir.OpSub:
			return func(a, b uint64) uint64 {
				return math.Float64bits(math.Float64frombits(a) - math.Float64frombits(b))
			}
		case ir.OpMul:
			return func(a, b uint64) uint64 {
				return math.Float64bits(math.Float64frombits(a) * math.Float64frombits(b))
			}
		case ir.OpDiv:
			return func(a, b uint64) uint64 {
				y := math.Float64frombits(b)
				if y == 0 {
					return 0
				}
				return math.Float64bits(math.Float64frombits(a) / y)
			}
		case ir.OpMin:
			return func(a, b uint64) uint64 {
				return math.Float64bits(math.Min(math.Float64frombits(a), math.Float64frombits(b)))
			}
		case ir.OpMax:
			return func(a, b uint64) uint64 {
				return math.Float64bits(math.Max(math.Float64frombits(a), math.Float64frombits(b)))
			}
		}
	case model.Float32:
		// Decode to float64, operate, round once on encode — the exact
		// sequence of the reference arith() so results are bit-identical.
		switch op {
		case ir.OpAdd:
			return func(a, b uint64) uint64 {
				v := float64(math.Float32frombits(uint32(a))) + float64(math.Float32frombits(uint32(b)))
				return uint64(math.Float32bits(float32(v)))
			}
		case ir.OpSub:
			return func(a, b uint64) uint64 {
				v := float64(math.Float32frombits(uint32(a))) - float64(math.Float32frombits(uint32(b)))
				return uint64(math.Float32bits(float32(v)))
			}
		case ir.OpMul:
			return func(a, b uint64) uint64 {
				v := float64(math.Float32frombits(uint32(a))) * float64(math.Float32frombits(uint32(b)))
				return uint64(math.Float32bits(float32(v)))
			}
		case ir.OpDiv:
			return func(a, b uint64) uint64 {
				y := float64(math.Float32frombits(uint32(b)))
				if y == 0 {
					return uint64(math.Float32bits(0))
				}
				v := float64(math.Float32frombits(uint32(a))) / y
				return uint64(math.Float32bits(float32(v)))
			}
		case ir.OpMin:
			return func(a, b uint64) uint64 {
				v := math.Min(float64(math.Float32frombits(uint32(a))), float64(math.Float32frombits(uint32(b))))
				return uint64(math.Float32bits(float32(v)))
			}
		case ir.OpMax:
			return func(a, b uint64) uint64 {
				v := math.Max(float64(math.Float32frombits(uint32(a))), float64(math.Float32frombits(uint32(b))))
				return uint64(math.Float32bits(float32(v)))
			}
		}
	}
	if dt.IsInteger() {
		mask := maskOf(dt)
		switch op {
		case ir.OpAdd:
			return func(a, b uint64) uint64 { return (a&mask + b&mask) & mask }
		case ir.OpSub:
			return func(a, b uint64) uint64 { return (a&mask - b&mask) & mask }
		case ir.OpMul:
			return func(a, b uint64) uint64 { return (a & mask) * (b & mask) & mask }
		}
		if dt.IsSigned() {
			sh := 64 - uint(dt.Size()*8)
			switch op {
			case ir.OpDiv:
				return func(a, b uint64) uint64 {
					y := int64(b<<sh) >> sh
					if y == 0 {
						return 0
					}
					return uint64((int64(a<<sh)>>sh)/y) & mask
				}
			case ir.OpMin:
				return func(a, b uint64) uint64 {
					x, y := int64(a<<sh)>>sh, int64(b<<sh)>>sh
					if y < x {
						x = y
					}
					return uint64(x) & mask
				}
			case ir.OpMax:
				return func(a, b uint64) uint64 {
					x, y := int64(a<<sh)>>sh, int64(b<<sh)>>sh
					if y > x {
						x = y
					}
					return uint64(x) & mask
				}
			}
		}
		switch op {
		case ir.OpDiv:
			return func(a, b uint64) uint64 {
				y := b & mask
				if y == 0 {
					return 0
				}
				return (a & mask) / y
			}
		case ir.OpMin:
			return func(a, b uint64) uint64 {
				x, y := a&mask, b&mask
				if y < x {
					return y
				}
				return x
			}
		case ir.OpMax:
			return func(a, b uint64) uint64 {
				x, y := a&mask, b&mask
				if y > x {
					return y
				}
				return x
			}
		}
	}
	// Bool arithmetic and invalid types: reference helper verbatim.
	return func(a, b uint64) uint64 { return arith(op, dt, a, b) }
}

func compareFn(op ir.Op, dt model.DType) func(a, b uint64) uint64 {
	switch dt {
	case model.Float64:
		switch op {
		case ir.OpEq:
			return func(a, b uint64) uint64 {
				return b2u(math.Float64frombits(a) == math.Float64frombits(b))
			}
		case ir.OpNe:
			return func(a, b uint64) uint64 {
				return b2u(math.Float64frombits(a) != math.Float64frombits(b))
			}
		case ir.OpLt:
			return func(a, b uint64) uint64 {
				return b2u(math.Float64frombits(a) < math.Float64frombits(b))
			}
		case ir.OpLe:
			return func(a, b uint64) uint64 {
				return b2u(math.Float64frombits(a) <= math.Float64frombits(b))
			}
		case ir.OpGt:
			return func(a, b uint64) uint64 {
				return b2u(math.Float64frombits(a) > math.Float64frombits(b))
			}
		case ir.OpGe:
			return func(a, b uint64) uint64 {
				return b2u(math.Float64frombits(a) >= math.Float64frombits(b))
			}
		}
	case model.Float32:
		switch op {
		case ir.OpEq:
			return func(a, b uint64) uint64 {
				return b2u(math.Float32frombits(uint32(a)) == math.Float32frombits(uint32(b)))
			}
		case ir.OpNe:
			return func(a, b uint64) uint64 {
				return b2u(math.Float32frombits(uint32(a)) != math.Float32frombits(uint32(b)))
			}
		case ir.OpLt:
			return func(a, b uint64) uint64 {
				return b2u(math.Float32frombits(uint32(a)) < math.Float32frombits(uint32(b)))
			}
		case ir.OpLe:
			return func(a, b uint64) uint64 {
				return b2u(math.Float32frombits(uint32(a)) <= math.Float32frombits(uint32(b)))
			}
		case ir.OpGt:
			return func(a, b uint64) uint64 {
				return b2u(math.Float32frombits(uint32(a)) > math.Float32frombits(uint32(b)))
			}
		case ir.OpGe:
			return func(a, b uint64) uint64 {
				return b2u(math.Float32frombits(uint32(a)) >= math.Float32frombits(uint32(b)))
			}
		}
	}
	if dt == model.Bool || dt.IsInteger() {
		mask := maskOf(dt)
		switch op {
		case ir.OpEq:
			return func(a, b uint64) uint64 { return b2u(a&mask == b&mask) }
		case ir.OpNe:
			return func(a, b uint64) uint64 { return b2u(a&mask != b&mask) }
		}
		if dt.IsSigned() {
			sh := 64 - uint(dt.Size()*8)
			switch op {
			case ir.OpLt:
				return func(a, b uint64) uint64 { return b2u(int64(a<<sh)>>sh < int64(b<<sh)>>sh) }
			case ir.OpLe:
				return func(a, b uint64) uint64 { return b2u(int64(a<<sh)>>sh <= int64(b<<sh)>>sh) }
			case ir.OpGt:
				return func(a, b uint64) uint64 { return b2u(int64(a<<sh)>>sh > int64(b<<sh)>>sh) }
			case ir.OpGe:
				return func(a, b uint64) uint64 { return b2u(int64(a<<sh)>>sh >= int64(b<<sh)>>sh) }
			}
		}
		switch op {
		case ir.OpLt:
			return func(a, b uint64) uint64 { return b2u(a&mask < b&mask) }
		case ir.OpLe:
			return func(a, b uint64) uint64 { return b2u(a&mask <= b&mask) }
		case ir.OpGt:
			return func(a, b uint64) uint64 { return b2u(a&mask > b&mask) }
		case ir.OpGe:
			return func(a, b uint64) uint64 { return b2u(a&mask >= b&mask) }
		}
	}
	// Invalid types: reference helper verbatim.
	return func(a, b uint64) uint64 { return compare(op, dt, a, b) }
}

func bitFn(op ir.Op, dt model.DType) func(a, b uint64) uint64 {
	if dt.IsInteger() {
		mask := maskOf(dt)
		switch op {
		case ir.OpBitAnd:
			return func(a, b uint64) uint64 { return a & b & mask }
		case ir.OpBitOr:
			return func(a, b uint64) uint64 { return (a | b) & mask }
		case ir.OpBitXor:
			return func(a, b uint64) uint64 { return (a ^ b) & mask }
		case ir.OpShl:
			return func(a, b uint64) uint64 { return (a & mask << (b & 31)) & mask }
		case ir.OpShr:
			if dt.IsSigned() {
				sh := 64 - uint(dt.Size()*8)
				return func(a, b uint64) uint64 {
					return uint64((int64(a<<sh)>>sh)>>(b&31)) & mask
				}
			}
			return func(a, b uint64) uint64 { return a & mask >> (b & 31) }
		}
	}
	// Bool and non-integer types: reference encode/decode path verbatim.
	switch op {
	case ir.OpBitAnd:
		return func(a, b uint64) uint64 {
			return model.EncodeInt(dt, model.DecodeInt(dt, a)&model.DecodeInt(dt, b))
		}
	case ir.OpBitOr:
		return func(a, b uint64) uint64 {
			return model.EncodeInt(dt, model.DecodeInt(dt, a)|model.DecodeInt(dt, b))
		}
	case ir.OpBitXor:
		return func(a, b uint64) uint64 {
			return model.EncodeInt(dt, model.DecodeInt(dt, a)^model.DecodeInt(dt, b))
		}
	case ir.OpShl:
		return func(a, b uint64) uint64 {
			return model.EncodeInt(dt, model.DecodeInt(dt, a)<<(uint(model.DecodeInt(dt, b))&31))
		}
	case ir.OpShr:
		return func(a, b uint64) uint64 {
			return model.EncodeInt(dt, model.DecodeInt(dt, a)>>(uint(model.DecodeInt(dt, b))&31))
		}
	}
	return func(a, b uint64) uint64 { return 0 }
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// unFn builds the value function of a unary op (neg, abs and the float math
// functions).
func unFn(op ir.Op, dt model.DType) func(uint64) uint64 {
	switch op {
	case ir.OpNeg:
		switch dt {
		case model.Float64:
			return func(a uint64) uint64 { return math.Float64bits(-math.Float64frombits(a)) }
		case model.Float32:
			return func(a uint64) uint64 {
				return uint64(math.Float32bits(float32(-float64(math.Float32frombits(uint32(a))))))
			}
		}
		if dt == model.Bool || dt.IsInteger() {
			// Two's-complement negation is determined by the low payload
			// bits; for Bool, -(a&1) renormalizes to a&1, matching
			// EncodeInt's truthiness canonicalization.
			mask := maskOf(dt)
			return func(a uint64) uint64 { return (0 - a&mask) & mask }
		}
	case ir.OpAbs:
		switch dt {
		case model.Float64:
			return func(a uint64) uint64 { return math.Float64bits(math.Abs(math.Float64frombits(a))) }
		case model.Float32:
			return func(a uint64) uint64 {
				return uint64(math.Float32bits(float32(math.Abs(float64(math.Float32frombits(uint32(a)))))))
			}
		}
		if dt.IsSigned() {
			sh := 64 - uint(dt.Size()*8)
			mask := maskOf(dt)
			return func(a uint64) uint64 {
				v := int64(a<<sh) >> sh
				if v < 0 {
					v = -v
				}
				return uint64(v) & mask
			}
		}
		if dt == model.Bool || dt.IsInteger() {
			mask := maskOf(dt)
			return func(a uint64) uint64 { return a & mask }
		}
	}
	if dt == model.Float64 {
		switch op {
		case ir.OpSqrt:
			return func(a uint64) uint64 {
				x := math.Float64frombits(a)
				if x < 0 {
					return 0
				}
				return math.Float64bits(math.Sqrt(x))
			}
		case ir.OpExp:
			return func(a uint64) uint64 { return math.Float64bits(math.Exp(math.Float64frombits(a))) }
		case ir.OpLog:
			return func(a uint64) uint64 {
				x := math.Float64frombits(a)
				if x <= 0 {
					return 0
				}
				return math.Float64bits(math.Log(x))
			}
		case ir.OpSin:
			return func(a uint64) uint64 { return math.Float64bits(math.Sin(math.Float64frombits(a))) }
		case ir.OpCos:
			return func(a uint64) uint64 { return math.Float64bits(math.Cos(math.Float64frombits(a))) }
		case ir.OpTan:
			return func(a uint64) uint64 { return math.Float64bits(math.Tan(math.Float64frombits(a))) }
		case ir.OpFloor:
			return func(a uint64) uint64 { return math.Float64bits(math.Floor(math.Float64frombits(a))) }
		case ir.OpCeil:
			return func(a uint64) uint64 { return math.Float64bits(math.Ceil(math.Float64frombits(a))) }
		case ir.OpRound:
			return func(a uint64) uint64 { return math.Float64bits(math.Round(math.Float64frombits(a))) }
		case ir.OpTrunc:
			return func(a uint64) uint64 { return math.Float64bits(math.Trunc(math.Float64frombits(a))) }
		}
	}
	// Float32 math, Neg/Abs on invalid types, and math on non-float types
	// take the reference helper: decode through float64, compute, re-encode
	// with the clamping Encode.
	return func(a uint64) uint64 { return unaryMath(op, dt, a) }
}
