package vm

import "testing"

// FuzzVMBackendsLockstep hands the differential rig to the native fuzzer:
// every (seed, steps, fuel) triple generates a verifier-clean program and
// runs it on the switch, threaded and batch backends in lockstep, comparing
// errors, fuel, outputs, state, registers and coverage after every call.
// The fuel dimension deliberately sweeps tiny budgets so the fuzzer spends
// much of its time landing hangs inside fused spans and replay paths.
func FuzzVMBackendsLockstep(f *testing.F) {
	f.Add(int64(0), int64(8), int64(0))
	f.Add(int64(1), int64(3), int64(17))
	f.Add(int64(42), int64(24), int64(0))
	f.Add(int64(7), int64(1), int64(1))
	f.Add(int64(13), int64(4), int64(500))
	f.Add(int64(-31), int64(15), int64(63))
	f.Fuzz(func(t *testing.T, seed, steps, fuel int64) {
		nSteps := int(steps&15) + 1
		if fuel < 0 {
			fuel = -fuel
		}
		// Cap the budget sweep: beyond a few thousand every generated program
		// terminates, so larger values only slow the fuzzer down. Zero keeps
		// the default budget.
		runLockstep(t, seed, nSteps, fuel%4096)
	})
}
