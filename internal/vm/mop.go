package vm

import (
	"math"
	"unsafe"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// The inner loop of the threaded backend executes micro-ops: each IR
// instruction is pre-decoded at compile time into one flat 64-byte mop with
// a monomorphized kind (opcode × data-type class resolved once), its
// register operands widened, and its width constants (mask, sign-extension
// shift, order-bias xor) precomputed. The stream is contiguous, so dispatch
// is a sequential fetch plus one dense-switch jump — no per-instruction
// opcode switch over the full Op space and no per-call type switches inside
// the model encode/decode helpers. Operations without a dedicated kind
// (Float32 math, Bool arithmetic, casts, ill-typed combinations) carry a
// monomorphized closure instead and dispatch through one indirect call.
//
// Width tricks the integer kinds rely on (w = bit width, mask = 2^w-1):
//   - add/sub/mul/neg and the bitwise ops are determined by the low w bits,
//     so one masked uint64 computation serves signed and unsigned alike;
//   - eq/ne compare masked raws (sign extension is injective);
//   - ordered compares xor both sides with xorv — 2^(w-1) for signed types,
//     0 for unsigned — which maps signed order onto unsigned order;
//   - shift amounts take only the low 5 bits of the raw (w >= 8 > 5);
//   - div/shr/abs on signed types sign-extend for real via sh = 64-w.
type mop struct {
	f2   func(a, b uint64) uint64 // mCall2 and fused arith/cmp bodies
	f1   func(a uint64) uint64    // mCall1 body
	imm  uint64                   // const payload, in/out/state index, fused aux register
	mask uint64                   // payload mask (integer kinds)
	xorv uint64                   // order bias for signed compares/min/max
	dst  int32
	a    int32
	b    int32
	c    int32 // select else-register, fused load slot / const dst
	tgt  int32 // jump target, fused store slot
	kind uint8
	cost uint8 // fuel units: instructions this mop covers (1, or span for fused)
	sh   uint8 // sign-extension shift for signed div/shr/abs
	flag bool  // fused cmp+jmp polarity (true = jmpIf)
}

// Micro-op kinds. Grouped so the switch in runMops stays a dense jump table.
const (
	mNop uint8 = iota
	mConst
	mMov
	mSelect
	mLoadIn
	mStoreOut
	mLoadState
	mStoreState
	mJmp
	mJmpIf
	mJmpIfNot
	mHalt
	mProbe
	mCondProbe

	// Integer kinds (mask/xorv/sh precomputed).
	mAddM
	mSubM
	mMulM
	mDivU
	mDivS
	mMinM
	mMaxM
	mBitAndM
	mBitOrM
	mBitXorM
	mShlM
	mShrU
	mShrS
	mNegM
	mAbsU
	mAbsS
	mEqM
	mNeM
	mLtM
	mLeM
	mGtM
	mGeM
	mTruthM

	// Bool logic (operates on canonical 0/1 payloads).
	mAnd
	mOr
	mXor
	mNot

	// Float64 kinds.
	mAddF
	mSubF
	mMulF
	mDivF
	mMinF
	mMaxF
	mNegF
	mAbsF
	mSqrtF
	mExpF
	mLogF
	mSinF
	mCosF
	mTanF
	mFloorF
	mCeilF
	mRoundF
	mTruncF
	mEqF
	mNeF
	mLtF
	mLeF
	mGtF
	mGeF
	mTruthF
	mTruthF32

	// Float32 kinds (decode to float64, compute, round once on encode —
	// the reference arith() sequence, bit for bit).
	mAddF32
	mSubF32
	mMulF32
	mDivF32
	mMinF32
	mMaxF32
	mNegF32
	mAbsF32
	mEqF32
	mNeF32
	mLtF32
	mLeF32
	mGtF32
	mGeF32

	// Closure fallbacks: one indirect call to a monomorphized value fn.
	mCall2
	mCall1

	// Cast kinds: every valid type pair pre-decoded into masked/shifted
	// register ops (mask = combined or target payload mask, sh = source
	// sign-extension shift, imm/xorv = float64 bits of the target's integer
	// clamp bounds for float sources). Ill-typed pairs keep the closure.
	mCastZX     // unsigned/bool -> int: mask only
	mCastSX     // signed -> int: sign-extend, re-mask
	mCastIB     // any int-like -> bool: masked non-zero test
	mCastSF64   // signed -> float64
	mCastSF32   // signed -> float32
	mCastUF64   // unsigned/bool -> float64
	mCastUF32   // unsigned/bool -> float32
	mCastF64I   // float64 -> int/bool: trunc, NaN->0, clamp, mask
	mCastF32I   // float32 -> int/bool
	mCastF64F32 // float64 -> float32
	mCastF32F64 // float32 -> float64

	// Superinstructions. All are straight-line except for a trailing
	// control transfer, so they never cross a basic-block boundary and
	// block-level fuel charging stays exact (see blockCosts).
	mFusedLAS          // loadState + arith + storeState
	mFusedCmpJmp       // cmp + jmpIf/jmpIfNot (closure compare)
	mFusedCmpJmpM      // …integer/bool compare inlined (op selector in sh)
	mFusedCmpJmpF      // …float64 compare inlined
	mFusedConstBin     // const + arith/cmp
	mFusedConstCmpJmp  // const + cmp + jmpIf/jmpIfNot (closure compare)
	mFusedConstCmpJmpM // …integer/bool compare inlined
	mFusedConstCmpJmpF // …float64 compare inlined
	mFusedMovJmp       // mov + jmp
	mFusedProbeJmp     // probe + jmp
	mFusedProbeJin     // probe + jmpIf/jmpIfNot
	mFusedCondProbeJin // condProbe + jmpIf/jmpIfNot
	mFusedConstConst   // const + const
	mFusedConstMov     // const + mov
	mFusedMovConst     // mov + const
	mFusedProbeMov     // probe + mov
	mFusedStConst      // storeState + const
	mFusedConstSt      // const + storeState
	mFusedStSt         // storeState + storeState
	mFusedLdMov        // loadState + mov
	mFusedMovLd        // mov + loadState
)

// compileMop pre-decodes one instruction. end is the clean-exit pc for halt
// and out-of-range jump targets.
func compileMop(ins *ir.Instr, pc, end int) mop {
	m := mop{
		dst:  int32(ins.Dst),
		a:    int32(ins.A),
		b:    int32(ins.B),
		c:    int32(ins.C),
		imm:  ins.Imm,
		cost: 1,
	}
	dt := ins.DT
	intLike := dt.IsInteger()
	signed := dt.IsSigned()
	if intLike {
		m.mask = maskOf(dt)
		if signed {
			m.sh = uint8(64 - dt.Size()*8)
			m.xorv = uint64(1) << uint(dt.Size()*8-1)
		}
	}

	setCall2 := func() {
		m.kind = mCall2
		m.f2 = binFn(ins.Op, dt)
	}
	setCall1 := func() {
		m.kind = mCall1
		m.f1 = unFn(ins.Op, dt)
	}

	switch ins.Op {
	case ir.OpNop:
		m.kind = mNop
	case ir.OpConst:
		m.kind = mConst
	case ir.OpMov:
		m.kind = mMov
	case ir.OpSelect:
		m.kind = mSelect
	case ir.OpLoadIn:
		m.kind = mLoadIn
	case ir.OpStoreOut:
		m.kind = mStoreOut
	case ir.OpLoadState:
		m.kind = mLoadState
	case ir.OpStoreState:
		m.kind = mStoreState
	case ir.OpJmp:
		m.kind = mJmp
		m.tgt = int32(jumpTo(ins.Imm, end))
	case ir.OpJmpIf:
		m.kind = mJmpIf
		m.tgt = int32(jumpTo(ins.Imm, end))
	case ir.OpJmpIfNot:
		m.kind = mJmpIfNot
		m.tgt = int32(jumpTo(ins.Imm, end))
	case ir.OpHalt:
		m.kind = mHalt
		m.tgt = int32(end)
	case ir.OpProbe:
		m.kind = mProbe
	case ir.OpCondProbe:
		m.kind = mCondProbe

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax:
		switch {
		case dt == model.Float64:
			switch ins.Op {
			case ir.OpAdd:
				m.kind = mAddF
			case ir.OpSub:
				m.kind = mSubF
			case ir.OpMul:
				m.kind = mMulF
			case ir.OpDiv:
				m.kind = mDivF
			case ir.OpMin:
				m.kind = mMinF
			case ir.OpMax:
				m.kind = mMaxF
			}
		case dt == model.Float32:
			switch ins.Op {
			case ir.OpAdd:
				m.kind = mAddF32
			case ir.OpSub:
				m.kind = mSubF32
			case ir.OpMul:
				m.kind = mMulF32
			case ir.OpDiv:
				m.kind = mDivF32
			case ir.OpMin:
				m.kind = mMinF32
			case ir.OpMax:
				m.kind = mMaxF32
			}
		case intLike:
			switch ins.Op {
			case ir.OpAdd:
				m.kind = mAddM
			case ir.OpSub:
				m.kind = mSubM
			case ir.OpMul:
				m.kind = mMulM
			case ir.OpDiv:
				if signed {
					m.kind = mDivS
				} else {
					m.kind = mDivU
				}
			case ir.OpMin:
				m.kind = mMinM
			case ir.OpMax:
				m.kind = mMaxM
			}
		default: // Float32, Bool, invalid
			setCall2()
		}
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		switch {
		case dt == model.Float64:
			m.kind = [...]uint8{mEqF, mNeF, mLtF, mLeF, mGtF, mGeF}[ins.Op-ir.OpEq]
		case dt == model.Float32:
			m.kind = [...]uint8{mEqF32, mNeF32, mLtF32, mLeF32, mGtF32, mGeF32}[ins.Op-ir.OpEq]
		case intLike || dt == model.Bool:
			if dt == model.Bool {
				m.mask = 1
			}
			m.kind = [...]uint8{mEqM, mNeM, mLtM, mLeM, mGtM, mGeM}[ins.Op-ir.OpEq]
		default:
			setCall2()
		}
	case ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr:
		if intLike {
			switch ins.Op {
			case ir.OpBitAnd:
				m.kind = mBitAndM
			case ir.OpBitOr:
				m.kind = mBitOrM
			case ir.OpBitXor:
				m.kind = mBitXorM
			case ir.OpShl:
				m.kind = mShlM
			case ir.OpShr:
				if signed {
					m.kind = mShrS
				} else {
					m.kind = mShrU
				}
			}
		} else {
			setCall2()
		}
	case ir.OpAnd:
		m.kind = mAnd
	case ir.OpOr:
		m.kind = mOr
	case ir.OpXor:
		m.kind = mXor
	case ir.OpNot:
		m.kind = mNot
	case ir.OpNeg:
		switch {
		case dt == model.Float64:
			m.kind = mNegF
		case dt == model.Float32:
			m.kind = mNegF32
		case intLike || dt == model.Bool:
			if dt == model.Bool {
				m.mask = 1
			}
			m.kind = mNegM
		default:
			setCall1()
		}
	case ir.OpAbs:
		switch {
		case dt == model.Float64:
			m.kind = mAbsF
		case dt == model.Float32:
			m.kind = mAbsF32
		case signed:
			m.kind = mAbsS
		case intLike || dt == model.Bool:
			if dt == model.Bool {
				m.mask = 1
			}
			m.kind = mAbsU
		default:
			setCall1()
		}
	case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
		ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		if dt == model.Float64 {
			m.kind = [...]uint8{mSqrtF, mExpF, mLogF, mSinF, mCosF, mTanF,
				mFloorF, mCeilF, mRoundF, mTruncF}[ins.Op-ir.OpSqrt]
		} else {
			setCall1()
		}
	case ir.OpTruth:
		switch ins.DT2 {
		case model.Float64:
			m.kind = mTruthF
		case model.Float32:
			m.kind = mTruthF32
		default:
			// Non-float truth is "any payload bit set": sign extension
			// cannot zero a nonzero value, so the masked raw decides.
			// Invalid types decode to 0 (mask 0), like model.DecodeInt.
			m.kind = mTruthM
			m.mask = maskOf(ins.DT2)
		}
	case ir.OpCast:
		to, from := ins.DT, ins.DT2
		m.kind, m.mask, m.xorv, m.sh = 0, 0, 0, 0
		intLikeFrom := from == model.Bool || from.IsInteger()
		intLikeTo := to == model.Bool || to.IsInteger()
		switch {
		case to == from && to.Valid():
			m.kind = mMov // model.Cast is the identity on equal types
		case intLikeFrom && from.IsSigned():
			m.sh = uint8(64 - from.Size()*8)
			switch {
			case to == model.Bool:
				m.kind, m.xorv = mCastIB, maskOf(from)
			case to.IsInteger():
				m.kind, m.mask = mCastSX, maskOf(to)
			case to == model.Float64:
				m.kind = mCastSF64
			case to == model.Float32:
				m.kind = mCastSF32
			}
		case intLikeFrom:
			fm := maskOf(from)
			switch {
			case to == model.Bool:
				m.kind, m.xorv = mCastIB, fm
			case to.IsInteger():
				m.kind, m.mask = mCastZX, fm&maskOf(to)
			case to == model.Float64:
				m.kind, m.mask = mCastUF64, fm
			case to == model.Float32:
				m.kind, m.mask = mCastUF32, fm
			}
		case from == model.Float64 && to == model.Float32:
			m.kind = mCastF64F32
		case from == model.Float32 && to == model.Float64:
			m.kind = mCastF32F64
		case from.IsFloat() && intLikeTo:
			if from == model.Float64 {
				m.kind = mCastF64I
			} else {
				m.kind = mCastF32I
			}
			m.imm = math.Float64bits(float64(to.MinInt()))
			m.xorv = math.Float64bits(float64(to.MaxInt()))
			m.mask = maskOf(to)
		}
		if m.kind == mNop { // ill-typed pair: defer to the reference helper
			m.kind = mCall1
			m.f1 = func(a uint64) uint64 { return model.Cast(to, from, a) }
		}
	default:
		// Unknown opcodes execute as no-ops, exactly like the reference
		// interpreter's switch falling through every case.
		m.kind = mNop
	}
	return m
}

// blockCosts converts per-op fuel charges into per-basic-block charges:
// the block head carries the whole block's instruction count and every
// other mop in the block costs zero, so the dispatch loop's fuel check is
// live only at block entries. Accounting stays bit-identical to per-op
// charging: a block is straight-line (only its final instruction can
// transfer control, and Halt terminates a block like a jump), so either the
// whole block runs — charging len instructions, same as one by one — or the
// budget dies at the head and the affordable prefix replays through the
// unfused closures, which also never walks past the block terminator.
// Blocks longer than 255 instructions are chunked so the charge fits the
// mop's uint8 cost field; a chunk boundary behaves exactly like a block
// boundary.
func blockCosts(code []ir.Instr, ms []mop) {
	if len(code) == 0 {
		return
	}
	head := make([]bool, len(code))
	head[0] = true
	for pc := range code {
		switch code[pc].Op {
		case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot, ir.OpHalt:
			if pc+1 < len(code) {
				head[pc+1] = true
			}
		}
	}
	targets := jumpTargets(code)
	for pc := 0; pc < len(code); pc++ {
		if targets[pc] {
			head[pc] = true
		}
	}
	// Walk dispatch points (stepping over fused spans so a chunk boundary
	// never lands mid-span), accumulating each block's instruction count
	// into its head.
	for start := 0; start < len(code); {
		end := start + int(ms[start].cost)
		for end < len(code) && !head[end] && end-start+int(ms[end].cost) <= 255 {
			end += int(ms[end].cost)
		}
		ms[start].cost = uint8(end - start)
		for pc := start + 1; pc < end; pc++ {
			ms[pc].cost = 0
		}
		start = end
	}
}

// fuseMops installs superinstructions at fusion heads. The covered pcs keep
// their mops (nothing jumps there — fusion requires it), but the dispatch
// loop skips them by advancing cost instructions at once. The patterns are
// the statically hottest pairs/triples the lowering emits: the state-update
// triple, compare-and-branch, the probe diamonds around every decision, and
// the const/mov/storeState data glue between blocks. A conditional branch
// may only end a span, never start one — otherwise the span would straddle
// a basic-block boundary and block-level fuel charging would misattribute
// the fallthrough instructions.
// cmpSel computes one of the six relational ops (selector = op - OpEq) over
// operands already normalized to unsigned order (masked, sign-bias xored).
func cmpSel(sel uint8, a, b uint64) uint64 {
	switch sel {
	case 0:
		return b2u(a == b)
	case 1:
		return b2u(a != b)
	case 2:
		return b2u(a < b)
	case 3:
		return b2u(a <= b)
	case 4:
		return b2u(a > b)
	default:
		return b2u(a >= b)
	}
}

// cmpSelF is cmpSel over decoded float64 operands.
func cmpSelF(sel uint8, a, b float64) uint64 {
	switch sel {
	case 0:
		return b2u(a == b)
	case 1:
		return b2u(a != b)
	case 2:
		return b2u(a < b)
	case 3:
		return b2u(a <= b)
	case 4:
		return b2u(a > b)
	default:
		return b2u(a >= b)
	}
}

// inlineFusedCmp upgrades a fused compare mop from the indirect f2 closure
// to an inline variant when the compare type has one (integer/bool masked
// order, or float64). The op selector rides in the otherwise-unused sh
// field; mask/xorv are free in both fused compare layouts.
func inlineFusedCmp(m *mop, op ir.Op, dt model.DType, constForm bool) {
	sel := uint8(op - ir.OpEq)
	switch {
	case dt == model.Float64:
		if constForm {
			m.kind = mFusedConstCmpJmpF
		} else {
			m.kind = mFusedCmpJmpF
		}
		m.sh = sel
	case dt == model.Bool || dt.IsInteger():
		if constForm {
			m.kind = mFusedConstCmpJmpM
		} else {
			m.kind = mFusedCmpJmpM
		}
		m.sh = sel
		m.mask = maskOf(dt)
		if dt.IsSigned() {
			m.xorv = uint64(1) << uint(dt.Size()*8-1)
		}
	}
}

func fuseMops(code []ir.Instr, ms []mop) (fused int) {
	targets := jumpTargets(code)
	end := len(code)
	isJcc := func(op ir.Op) bool { return op == ir.OpJmpIf || op == ir.OpJmpIfNot }
	for pc := 0; pc < len(code); {
		if pc+2 < len(code) && !targets[pc+1] && !targets[pc+2] {
			c0, c1, c2 := &code[pc], &code[pc+1], &code[pc+2]
			// loadState + arith + storeState: the state-update pattern of
			// every delay/integrator/counter block.
			if c0.Op == ir.OpLoadState && isArith(c1.Op) &&
				(c1.A == c0.Dst || c1.B == c0.Dst) &&
				c2.Op == ir.OpStoreState && c2.A == c1.Dst {
				ms[pc] = mop{
					kind: mFusedLAS,
					cost: 3,
					f2:   binFn(c1.Op, c1.DT),
					imm:  uint64(c0.Dst), // load destination register
					c:    int32(c0.Imm),  // load state slot
					a:    int32(c1.A),
					b:    int32(c1.B),
					dst:  int32(c1.Dst),
					tgt:  int32(c2.Imm), // store state slot
				}
				fused++
				pc += 3
				continue
			}
			// const + cmp + jmpIf/jmpIfNot: branch on compare-to-immediate.
			if c0.Op == ir.OpConst && isCmp(c1.Op) &&
				(c1.A == c0.Dst || c1.B == c0.Dst) &&
				isJcc(c2.Op) && c2.A == c1.Dst {
				ms[pc] = mop{
					kind: mFusedConstCmpJmp,
					cost: 3,
					f2:   binFn(c1.Op, c1.DT),
					imm:  c0.Imm,
					c:    int32(c0.Dst), // const destination register
					a:    int32(c1.A),
					b:    int32(c1.B),
					dst:  int32(c1.Dst),
					tgt:  int32(jumpTo(c2.Imm, end)),
					flag: c2.Op == ir.OpJmpIf,
				}
				inlineFusedCmp(&ms[pc], c1.Op, c1.DT, true)
				fused++
				pc += 3
				continue
			}
		}
		if pc+1 < len(code) && !targets[pc+1] {
			c0, c1 := &code[pc], &code[pc+1]
			var m mop
			switch {
			// cmp + jmpIf/jmpIfNot: every lowered branch condition.
			case isCmp(c0.Op) && isJcc(c1.Op) && c1.A == c0.Dst:
				m = mop{
					kind: mFusedCmpJmp,
					f2:   binFn(c0.Op, c0.DT),
					a:    int32(c0.A),
					b:    int32(c0.B),
					dst:  int32(c0.Dst),
					tgt:  int32(jumpTo(c1.Imm, end)),
					flag: c1.Op == ir.OpJmpIf,
				}
				inlineFusedCmp(&m, c0.Op, c0.DT, false)
			// const + arith/cmp: immediate-operand arithmetic.
			case c0.Op == ir.OpConst && (isArith(c1.Op) || isCmp(c1.Op)) &&
				(c1.A == c0.Dst || c1.B == c0.Dst):
				m = mop{
					kind: mFusedConstBin,
					f2:   binFn(c1.Op, c1.DT),
					imm:  c0.Imm,
					c:    int32(c0.Dst), // const destination register
					a:    int32(c1.A),
					b:    int32(c1.B),
					dst:  int32(c1.Dst),
				}
			// probe + jmp / probe + conditional jump: the exit of every
			// decision diamond's arm.
			case c0.Op == ir.OpProbe && c1.Op == ir.OpJmp:
				m = mop{kind: mFusedProbeJmp, a: int32(c0.A), b: int32(c0.B),
					tgt: int32(jumpTo(c1.Imm, end))}
			case c0.Op == ir.OpProbe && isJcc(c1.Op):
				m = mop{kind: mFusedProbeJin, a: int32(c0.A), b: int32(c0.B),
					c: int32(c1.A), tgt: int32(jumpTo(c1.Imm, end)),
					flag: c1.Op == ir.OpJmpIf}
			case c0.Op == ir.OpProbe && c1.Op == ir.OpMov:
				m = mop{kind: mFusedProbeMov, a: int32(c0.A), b: int32(c0.B),
					dst: int32(c1.Dst), c: int32(c1.A)}
			// condProbe + conditional jump: branch on an MCDC-probed
			// condition.
			case c0.Op == ir.OpCondProbe && isJcc(c1.Op):
				m = mop{kind: mFusedCondProbeJin, a: int32(c0.A), b: int32(c0.B),
					c: int32(c1.A), tgt: int32(jumpTo(c1.Imm, end)),
					flag: c1.Op == ir.OpJmpIf}
			// mov + jmp: the join at the end of a branch arm.
			case c0.Op == ir.OpMov && c1.Op == ir.OpJmp:
				m = mop{kind: mFusedMovJmp, dst: int32(c0.Dst), a: int32(c0.A),
					tgt: int32(jumpTo(c1.Imm, end))}
			// const/mov/loadState/storeState glue pairs.
			case c0.Op == ir.OpConst && c1.Op == ir.OpConst:
				m = mop{kind: mFusedConstConst, c: int32(c0.Dst), imm: c0.Imm,
					dst: int32(c1.Dst), mask: c1.Imm}
			case c0.Op == ir.OpConst && c1.Op == ir.OpMov:
				m = mop{kind: mFusedConstMov, c: int32(c0.Dst), imm: c0.Imm,
					dst: int32(c1.Dst), a: int32(c1.A)}
			case c0.Op == ir.OpMov && c1.Op == ir.OpConst:
				m = mop{kind: mFusedMovConst, dst: int32(c0.Dst), a: int32(c0.A),
					c: int32(c1.Dst), imm: c1.Imm}
			case c0.Op == ir.OpStoreState && c1.Op == ir.OpConst:
				m = mop{kind: mFusedStConst, a: int32(c0.A), c: int32(c0.Imm),
					dst: int32(c1.Dst), imm: c1.Imm}
			case c0.Op == ir.OpConst && c1.Op == ir.OpStoreState:
				m = mop{kind: mFusedConstSt, c: int32(c0.Dst), imm: c0.Imm,
					a: int32(c1.A), tgt: int32(c1.Imm)}
			case c0.Op == ir.OpStoreState && c1.Op == ir.OpStoreState:
				m = mop{kind: mFusedStSt, a: int32(c0.A), c: int32(c0.Imm),
					b: int32(c1.A), tgt: int32(c1.Imm)}
			case c0.Op == ir.OpLoadState && c1.Op == ir.OpMov:
				m = mop{kind: mFusedLdMov, c: int32(c0.Dst), imm: c0.Imm,
					dst: int32(c1.Dst), a: int32(c1.A)}
			case c0.Op == ir.OpMov && c1.Op == ir.OpLoadState:
				m = mop{kind: mFusedMovLd, dst: int32(c0.Dst), a: int32(c0.A),
					c: int32(c1.Dst), imm: c1.Imm}
			}
			if m.kind != 0 {
				m.cost = 2
				ms[pc] = m
				fused++
				pc += 2
				continue
			}
		}
		pc++
	}
	return fused
}

// rld and rst access the register file through a raw base pointer, skipping
// the per-access bounds check the hot loop would otherwise pay on every
// operand. What licenses this: CompileThreaded refuses (panics on) any
// program that fails ir.Validate, and Validate range-checks every register
// operand of every instruction against NumRegs — so by the time a mop
// stream executes, every dst/a/b/c/imm register index is proven in-bounds
// for a file of NumRegs words.
func rld(base unsafe.Pointer, i int32) uint64 {
	return *(*uint64)(unsafe.Add(base, uintptr(uint32(i))*8))
}

func rst(base unsafe.Pointer, i int32, v uint64) {
	*(*uint64)(unsafe.Add(base, uintptr(uint32(i))*8)) = v
}

// runMops is the inner interpreter loop, shared by Threaded and Batch. Fuel
// is charged before execution, exactly mirroring the reference interpreter's
// check-before-execute order: cost instructions per dispatch. When the
// budget dies inside a fused span, the still-affordable prefix of the span
// replays through the unfused closures so every executed instruction's side
// effects land and the hang pc is the precise sub-instruction the reference
// would have stopped at.
func runMops(ms []mop, slow []opFn, s *execState, budget int64) (left int64, hangPC int, hung bool) {
	state := s.state
	var rb unsafe.Pointer
	if len(s.regs) > 0 {
		rb = unsafe.Pointer(&s.regs[0])
	}
	fuel := budget
	// The stream ends in a zero-cost sentinel halt (see compileFunc) and
	// every pc transition below stays within [0, len(ms)-1]: sequential
	// advances never step past a span that fits the original code, and jump
	// targets are clamped to the sentinel at compile time. That invariant
	// replaces both the loop-bound test and the fetch bounds check.
	mb := unsafe.Pointer(&ms[0])
	pc := 0
	for {
		m := (*mop)(unsafe.Add(mb, uintptr(uint(pc))*unsafe.Sizeof(mop{})))
		c := int64(m.cost)
		if fuel < c {
			for i := int64(0); i < fuel; i++ {
				slow[pc+int(i)](s)
			}
			return 0, pc + int(fuel), true
		}
		fuel -= c
		switch m.kind {
		case mNop:
			pc++
		case mConst:
			rst(rb, int32(m.dst), m.imm)
			pc++
		case mMov:
			rst(rb, int32(m.dst), rld(rb, int32(m.a)))
			pc++
		case mSelect:
			if rld(rb, int32(m.a)) != 0 {
				rst(rb, int32(m.dst), rld(rb, int32(m.b)))
			} else {
				rst(rb, int32(m.dst), rld(rb, int32(m.c)))
			}
			pc++
		case mLoadIn:
			rst(rb, int32(m.dst), s.in[m.imm])
			pc++
		case mStoreOut:
			s.out[m.imm] = rld(rb, int32(m.a))
			pc++
		case mLoadState:
			rst(rb, int32(m.dst), state[m.imm])
			pc++
		case mStoreState:
			state[m.imm] = rld(rb, int32(m.a))
			pc++
		case mJmp:
			pc = int(m.tgt)
		case mJmpIf:
			if rld(rb, int32(m.a)) != 0 {
				pc = int(m.tgt)
			} else {
				pc++
			}
		case mJmpIfNot:
			if rld(rb, int32(m.a)) == 0 {
				pc = int(m.tgt)
			} else {
				pc++
			}
		case mHalt:
			return fuel, 0, false
		case mProbe:
			if s.rec != nil {
				s.rec.Outcome(int(m.a), int(m.b))
			}
			pc++
		case mCondProbe:
			if s.rec != nil {
				s.rec.Cond(int(m.a), rld(rb, int32(m.b)) != 0)
			}
			pc++

		case mAddM:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))&m.mask+rld(rb, int32(m.b))&m.mask)&m.mask)
			pc++
		case mSubM:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))&m.mask-rld(rb, int32(m.b))&m.mask)&m.mask)
			pc++
		case mMulM:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))&m.mask)*(rld(rb, int32(m.b))&m.mask)&m.mask)
			pc++
		case mDivU:
			y := rld(rb, int32(m.b)) & m.mask
			if y == 0 {
				rst(rb, int32(m.dst), 0)
			} else {
				rst(rb, int32(m.dst), (rld(rb, int32(m.a))&m.mask)/y)
			}
			pc++
		case mDivS:
			y := int64(rld(rb, int32(m.b))<<m.sh) >> m.sh
			if y == 0 {
				rst(rb, int32(m.dst), 0)
			} else {
				rst(rb, int32(m.dst), uint64((int64(rld(rb, int32(m.a))<<m.sh)>>m.sh)/y)&m.mask)
			}
			pc++
		case mMinM:
			x, y := rld(rb, int32(m.a))&m.mask, rld(rb, int32(m.b))&m.mask
			if y^m.xorv < x^m.xorv {
				x = y
			}
			rst(rb, int32(m.dst), x)
			pc++
		case mMaxM:
			x, y := rld(rb, int32(m.a))&m.mask, rld(rb, int32(m.b))&m.mask
			if y^m.xorv > x^m.xorv {
				x = y
			}
			rst(rb, int32(m.dst), x)
			pc++
		case mBitAndM:
			rst(rb, int32(m.dst), rld(rb, int32(m.a))&rld(rb, int32(m.b))&m.mask)
			pc++
		case mBitOrM:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))|rld(rb, int32(m.b)))&m.mask)
			pc++
		case mBitXorM:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))^rld(rb, int32(m.b)))&m.mask)
			pc++
		case mShlM:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))&m.mask<<(rld(rb, int32(m.b))&31))&m.mask)
			pc++
		case mShrU:
			rst(rb, int32(m.dst), rld(rb, int32(m.a))&m.mask>>(rld(rb, int32(m.b))&31))
			pc++
		case mShrS:
			rst(rb, int32(m.dst), uint64((int64(rld(rb, int32(m.a))<<m.sh)>>m.sh)>>(rld(rb, int32(m.b))&31))&m.mask)
			pc++
		case mNegM:
			rst(rb, int32(m.dst), (0-rld(rb, int32(m.a))&m.mask)&m.mask)
			pc++
		case mAbsU:
			rst(rb, int32(m.dst), rld(rb, int32(m.a))&m.mask)
			pc++
		case mAbsS:
			v := int64(rld(rb, int32(m.a))<<m.sh) >> m.sh
			if v < 0 {
				v = -v
			}
			rst(rb, int32(m.dst), uint64(v)&m.mask)
			pc++
		case mEqM:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.mask == rld(rb, int32(m.b))&m.mask))
			pc++
		case mNeM:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.mask != rld(rb, int32(m.b))&m.mask))
			pc++
		case mLtM:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.mask^m.xorv < rld(rb, int32(m.b))&m.mask^m.xorv))
			pc++
		case mLeM:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.mask^m.xorv <= rld(rb, int32(m.b))&m.mask^m.xorv))
			pc++
		case mGtM:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.mask^m.xorv > rld(rb, int32(m.b))&m.mask^m.xorv))
			pc++
		case mGeM:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.mask^m.xorv >= rld(rb, int32(m.b))&m.mask^m.xorv))
			pc++
		case mTruthM:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.mask != 0))
			pc++

		case mAnd:
			rst(rb, int32(m.dst), rld(rb, int32(m.a))&rld(rb, int32(m.b))&1)
			pc++
		case mOr:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))|rld(rb, int32(m.b)))&1)
			pc++
		case mXor:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))^rld(rb, int32(m.b)))&1)
			pc++
		case mNot:
			rst(rb, int32(m.dst), (rld(rb, int32(m.a))&1)^1)
			pc++

		case mAddF:
			rst(rb, int32(m.dst), math.Float64bits(math.Float64frombits(rld(rb, int32(m.a)))+math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mSubF:
			rst(rb, int32(m.dst), math.Float64bits(math.Float64frombits(rld(rb, int32(m.a)))-math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mMulF:
			rst(rb, int32(m.dst), math.Float64bits(math.Float64frombits(rld(rb, int32(m.a)))*math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mDivF:
			y := math.Float64frombits(rld(rb, int32(m.b)))
			if y == 0 {
				rst(rb, int32(m.dst), 0)
			} else {
				rst(rb, int32(m.dst), math.Float64bits(math.Float64frombits(rld(rb, int32(m.a)))/y))
			}
			pc++
		case mMinF:
			rst(rb, int32(m.dst), math.Float64bits(math.Min(math.Float64frombits(rld(rb, int32(m.a))), math.Float64frombits(rld(rb, int32(m.b))))))
			pc++
		case mMaxF:
			rst(rb, int32(m.dst), math.Float64bits(math.Max(math.Float64frombits(rld(rb, int32(m.a))), math.Float64frombits(rld(rb, int32(m.b))))))
			pc++
		case mNegF:
			rst(rb, int32(m.dst), math.Float64bits(-math.Float64frombits(rld(rb, int32(m.a)))))
			pc++
		case mAbsF:
			rst(rb, int32(m.dst), math.Float64bits(math.Abs(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mSqrtF:
			x := math.Float64frombits(rld(rb, int32(m.a)))
			if x < 0 {
				rst(rb, int32(m.dst), 0)
			} else {
				rst(rb, int32(m.dst), math.Float64bits(math.Sqrt(x)))
			}
			pc++
		case mExpF:
			rst(rb, int32(m.dst), math.Float64bits(math.Exp(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mLogF:
			x := math.Float64frombits(rld(rb, int32(m.a)))
			if x <= 0 {
				rst(rb, int32(m.dst), 0)
			} else {
				rst(rb, int32(m.dst), math.Float64bits(math.Log(x)))
			}
			pc++
		case mSinF:
			rst(rb, int32(m.dst), math.Float64bits(math.Sin(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mCosF:
			rst(rb, int32(m.dst), math.Float64bits(math.Cos(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mTanF:
			rst(rb, int32(m.dst), math.Float64bits(math.Tan(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mFloorF:
			rst(rb, int32(m.dst), math.Float64bits(math.Floor(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mCeilF:
			rst(rb, int32(m.dst), math.Float64bits(math.Ceil(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mRoundF:
			rst(rb, int32(m.dst), math.Float64bits(math.Round(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mTruncF:
			rst(rb, int32(m.dst), math.Float64bits(math.Trunc(math.Float64frombits(rld(rb, int32(m.a))))))
			pc++
		case mEqF:
			rst(rb, int32(m.dst), b2u(math.Float64frombits(rld(rb, int32(m.a))) == math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mNeF:
			rst(rb, int32(m.dst), b2u(math.Float64frombits(rld(rb, int32(m.a))) != math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mLtF:
			rst(rb, int32(m.dst), b2u(math.Float64frombits(rld(rb, int32(m.a))) < math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mLeF:
			rst(rb, int32(m.dst), b2u(math.Float64frombits(rld(rb, int32(m.a))) <= math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mGtF:
			rst(rb, int32(m.dst), b2u(math.Float64frombits(rld(rb, int32(m.a))) > math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mGeF:
			rst(rb, int32(m.dst), b2u(math.Float64frombits(rld(rb, int32(m.a))) >= math.Float64frombits(rld(rb, int32(m.b)))))
			pc++
		case mTruthF:
			rst(rb, int32(m.dst), b2u(math.Float64frombits(rld(rb, int32(m.a))) != 0))
			pc++
		case mTruthF32:
			rst(rb, int32(m.dst), b2u(math.Float32frombits(uint32(rld(rb, int32(m.a)))) != 0))
			pc++

		case mAddF32:
			v := float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))) + float64(math.Float32frombits(uint32(rld(rb, int32(m.b)))))
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(v))))
			pc++
		case mSubF32:
			v := float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))) - float64(math.Float32frombits(uint32(rld(rb, int32(m.b)))))
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(v))))
			pc++
		case mMulF32:
			v := float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))) * float64(math.Float32frombits(uint32(rld(rb, int32(m.b)))))
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(v))))
			pc++
		case mDivF32:
			y := float64(math.Float32frombits(uint32(rld(rb, int32(m.b)))))
			if y == 0 {
				rst(rb, int32(m.dst), uint64(math.Float32bits(0)))
			} else {
				v := float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))) / y
				rst(rb, int32(m.dst), uint64(math.Float32bits(float32(v))))
			}
			pc++
		case mMinF32:
			v := math.Min(float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))), float64(math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(v))))
			pc++
		case mMaxF32:
			v := math.Max(float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))), float64(math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(v))))
			pc++
		case mNegF32:
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(-float64(math.Float32frombits(uint32(rld(rb, int32(m.a)))))))))
			pc++
		case mAbsF32:
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(math.Abs(float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))))))))
			pc++
		case mEqF32:
			rst(rb, int32(m.dst), b2u(math.Float32frombits(uint32(rld(rb, int32(m.a)))) == math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			pc++
		case mNeF32:
			rst(rb, int32(m.dst), b2u(math.Float32frombits(uint32(rld(rb, int32(m.a)))) != math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			pc++
		case mLtF32:
			rst(rb, int32(m.dst), b2u(math.Float32frombits(uint32(rld(rb, int32(m.a)))) < math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			pc++
		case mLeF32:
			rst(rb, int32(m.dst), b2u(math.Float32frombits(uint32(rld(rb, int32(m.a)))) <= math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			pc++
		case mGtF32:
			rst(rb, int32(m.dst), b2u(math.Float32frombits(uint32(rld(rb, int32(m.a)))) > math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			pc++
		case mGeF32:
			rst(rb, int32(m.dst), b2u(math.Float32frombits(uint32(rld(rb, int32(m.a)))) >= math.Float32frombits(uint32(rld(rb, int32(m.b))))))
			pc++

		case mCall2:
			rst(rb, int32(m.dst), m.f2(rld(rb, int32(m.a)), rld(rb, int32(m.b))))
			pc++
		case mCall1:
			rst(rb, int32(m.dst), m.f1(rld(rb, int32(m.a))))
			pc++

		case mCastZX:
			rst(rb, int32(m.dst), rld(rb, int32(m.a))&m.mask)
			pc++
		case mCastSX:
			rst(rb, int32(m.dst), uint64(int64(rld(rb, int32(m.a))<<m.sh)>>m.sh)&m.mask)
			pc++
		case mCastIB:
			rst(rb, int32(m.dst), b2u(rld(rb, int32(m.a))&m.xorv != 0))
			pc++
		case mCastSF64:
			rst(rb, int32(m.dst), math.Float64bits(float64(int64(rld(rb, int32(m.a))<<m.sh)>>m.sh)))
			pc++
		case mCastSF32:
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(int64(rld(rb, int32(m.a))<<m.sh)>>m.sh))))
			pc++
		case mCastUF64:
			rst(rb, int32(m.dst), math.Float64bits(float64(rld(rb, int32(m.a))&m.mask)))
			pc++
		case mCastUF32:
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(rld(rb, int32(m.a))&m.mask))))
			pc++
		case mCastF64I:
			x := math.Trunc(math.Float64frombits(rld(rb, int32(m.a))))
			if x != x { // NaN
				x = 0
			}
			if lo := math.Float64frombits(m.imm); x < lo {
				x = lo
			}
			if hi := math.Float64frombits(m.xorv); x > hi {
				x = hi
			}
			rst(rb, int32(m.dst), uint64(int64(x))&m.mask)
			pc++
		case mCastF32I:
			x := math.Trunc(float64(math.Float32frombits(uint32(rld(rb, int32(m.a))))))
			if x != x { // NaN
				x = 0
			}
			if lo := math.Float64frombits(m.imm); x < lo {
				x = lo
			}
			if hi := math.Float64frombits(m.xorv); x > hi {
				x = hi
			}
			rst(rb, int32(m.dst), uint64(int64(x))&m.mask)
			pc++
		case mCastF64F32:
			rst(rb, int32(m.dst), uint64(math.Float32bits(float32(math.Float64frombits(rld(rb, int32(m.a)))))))
			pc++
		case mCastF32F64:
			rst(rb, int32(m.dst), math.Float64bits(float64(math.Float32frombits(uint32(rld(rb, int32(m.a)))))))
			pc++

		case mFusedLAS:
			rst(rb, int32(m.imm), state[m.c])
			v := m.f2(rld(rb, int32(m.a)), rld(rb, int32(m.b)))
			rst(rb, int32(m.dst), v)
			state[m.tgt] = v
			pc += 3
		case mFusedCmpJmp:
			v := m.f2(rld(rb, int32(m.a)), rld(rb, int32(m.b)))
			rst(rb, int32(m.dst), v)
			if (v != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 2
			}
		case mFusedCmpJmpM:
			v := cmpSel(m.sh, rld(rb, int32(m.a))&m.mask^m.xorv, rld(rb, int32(m.b))&m.mask^m.xorv)
			rst(rb, int32(m.dst), v)
			if (v != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 2
			}
		case mFusedCmpJmpF:
			v := cmpSelF(m.sh, math.Float64frombits(rld(rb, int32(m.a))), math.Float64frombits(rld(rb, int32(m.b))))
			rst(rb, int32(m.dst), v)
			if (v != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 2
			}
		case mFusedConstBin:
			rst(rb, int32(m.c), m.imm)
			rst(rb, int32(m.dst), m.f2(rld(rb, int32(m.a)), rld(rb, int32(m.b))))
			pc += 2
		case mFusedConstCmpJmp:
			rst(rb, int32(m.c), m.imm)
			v := m.f2(rld(rb, int32(m.a)), rld(rb, int32(m.b)))
			rst(rb, int32(m.dst), v)
			if (v != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 3
			}
		case mFusedConstCmpJmpM:
			rst(rb, int32(m.c), m.imm)
			v := cmpSel(m.sh, rld(rb, int32(m.a))&m.mask^m.xorv, rld(rb, int32(m.b))&m.mask^m.xorv)
			rst(rb, int32(m.dst), v)
			if (v != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 3
			}
		case mFusedConstCmpJmpF:
			rst(rb, int32(m.c), m.imm)
			v := cmpSelF(m.sh, math.Float64frombits(rld(rb, int32(m.a))), math.Float64frombits(rld(rb, int32(m.b))))
			rst(rb, int32(m.dst), v)
			if (v != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 3
			}
		case mFusedMovJmp:
			rst(rb, int32(m.dst), rld(rb, int32(m.a)))
			pc = int(m.tgt)
		case mFusedProbeJmp:
			if s.rec != nil {
				s.rec.Outcome(int(m.a), int(m.b))
			}
			pc = int(m.tgt)
		case mFusedProbeJin:
			if s.rec != nil {
				s.rec.Outcome(int(m.a), int(m.b))
			}
			if (rld(rb, int32(m.c)) != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 2
			}
		case mFusedCondProbeJin:
			if s.rec != nil {
				s.rec.Cond(int(m.a), rld(rb, int32(m.b)) != 0)
			}
			if (rld(rb, int32(m.c)) != 0) == m.flag {
				pc = int(m.tgt)
			} else {
				pc += 2
			}
		case mFusedConstConst:
			rst(rb, int32(m.c), m.imm)
			rst(rb, int32(m.dst), m.mask)
			pc += 2
		case mFusedConstMov:
			rst(rb, int32(m.c), m.imm)
			rst(rb, int32(m.dst), rld(rb, int32(m.a)))
			pc += 2
		case mFusedMovConst:
			rst(rb, int32(m.dst), rld(rb, int32(m.a)))
			rst(rb, int32(m.c), m.imm)
			pc += 2
		case mFusedProbeMov:
			if s.rec != nil {
				s.rec.Outcome(int(m.a), int(m.b))
			}
			rst(rb, int32(m.dst), rld(rb, int32(m.c)))
			pc += 2
		case mFusedStConst:
			state[m.c] = rld(rb, int32(m.a))
			rst(rb, int32(m.dst), m.imm)
			pc += 2
		case mFusedConstSt:
			rst(rb, int32(m.c), m.imm)
			state[m.tgt] = rld(rb, int32(m.a))
			pc += 2
		case mFusedStSt:
			state[m.c] = rld(rb, int32(m.a))
			state[m.tgt] = rld(rb, int32(m.b))
			pc += 2
		case mFusedLdMov:
			rst(rb, int32(m.c), state[m.imm])
			rst(rb, int32(m.dst), rld(rb, int32(m.a)))
			pc += 2
		case mFusedMovLd:
			rst(rb, int32(m.dst), rld(rb, int32(m.a)))
			rst(rb, int32(m.c), state[m.imm])
			pc += 2
		}
	}
}
