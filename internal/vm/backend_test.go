package vm

import (
	"fmt"
	"math/rand"
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
)

// runLockstep is the cross-backend differential oracle: it builds one
// generated program, runs it through every backend in lockstep on the same
// input stream, and demands bit-identical observables after every call —
// outputs, state, fuel consumed, hang attribution, and both coverage arrays.
// fuel <= 0 runs with the default budget (generated programs then never
// hang); a small budget forces mid-program hangs, which must abort at the
// same sub-instruction pc on every backend.
func runLockstep(t *testing.T, seed int64, steps int, fuel int64) {
	t.Helper()
	p, decs := ir.GenProgram(seed)
	if err := p.Validate(); err != nil {
		t.Fatalf("gen seed %d: %v", seed, err)
	}
	plan := planFor(decs)
	if err := analysis.VerifyStrict(p, plan); err != nil {
		t.Fatalf("gen seed %d not verifier-clean: %v", seed, err)
	}

	backs := allBackends()
	engines := make([]Backend, len(backs))
	recs := make([]*coverage.Recorder, len(backs))
	for i, bc := range backs {
		recs[i] = coverage.NewRecorder(plan)
		engines[i] = bc.make(p, recs[i])
		if fuel > 0 {
			engines[i].SetFuel(fuel)
		}
	}
	ref, refRec := engines[0], recs[0]

	refErr := ref.Init()
	for i := 1; i < len(engines); i++ {
		compareAfterCall(t, "init vs "+backs[i].name, ref, engines[i], refErr, engines[i].Init(), refRec, recs[i])
	}
	rnd := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	for s := 0; s < steps; s++ {
		in := genInputs(rnd, p.In)
		for _, r := range recs {
			r.BeginStep()
		}
		refErr = ref.Step(in)
		for i := 1; i < len(engines); i++ {
			name := fmt.Sprintf("step %d vs %s", s, backs[i].name)
			compareAfterCall(t, name, ref, engines[i], refErr, engines[i].Step(in), refRec, recs[i])
		}
	}
}

func TestBackendsLockstepGenerated(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runLockstep(t, seed, 24, 0)
		})
	}
}

// TestBackendsLockstepFuelSweep hammers the fuel accounting: every budget
// from 1 instruction up must hang (or not) identically on every backend,
// with the same abort pc, the same partial state/output effects and the same
// partial probe stream. This is the test that keeps the threaded backend's
// block-level fuel charging and slow-path replay honest.
func TestBackendsLockstepFuelSweep(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 5, 8, 13} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Measure real costs once, then sweep tight around them plus the
			// tiny-budget range where even the init prologue hangs.
			p, _ := ir.GenProgram(seed)
			m := New(p, nil)
			if err := m.Init(); err != nil {
				t.Fatalf("init with default fuel: %v", err)
			}
			initCost := m.LastFuelUsed()
			rnd := rand.New(rand.NewSource(seed ^ 0x5deece66d))
			var stepCost int64
			for s := 0; s < 3; s++ {
				if err := m.Step(genInputs(rnd, p.In)); err != nil {
					t.Fatalf("step with default fuel: %v", err)
				}
				stepCost = max(stepCost, m.LastFuelUsed())
			}
			budgets := map[int64]bool{}
			for b := int64(1); b <= 50; b++ {
				budgets[b] = true
			}
			for d := int64(-2); d <= 2; d++ {
				if initCost+d > 0 {
					budgets[initCost+d] = true
				}
				if stepCost+d > 0 {
					budgets[stepCost+d] = true
				}
			}
			for b := range budgets {
				runLockstep(t, seed, 3, b)
			}
		})
	}
}

// TestBatchLanesAreIsolated drives a multi-program batch (shared SoA slabs,
// maximum strides) against one reference machine per lane, interleaving the
// lanes, and checks no lane's registers, state, outputs or coverage leak
// into a neighbour. The ResetAll halfway through must be equivalent to
// constructing fresh machines.
func TestBatchLanesAreIsolated(t *testing.T) {
	seeds := []int64{11, 12, 13, 14}
	type lane struct {
		prog *ir.Program
		rec  *coverage.Recorder // batch lane recorder
		mrec *coverage.Recorder // reference machine recorder
		m    *Machine
		rnd  *rand.Rand
	}
	lanes := make([]*lane, len(seeds))
	codes := make([]*Code, len(seeds))
	recs := make([]*coverage.Recorder, len(seeds))
	for i, seed := range seeds {
		p, decs := ir.GenProgram(seed)
		plan := planFor(decs)
		lanes[i] = &lane{
			prog: p,
			rec:  coverage.NewRecorder(plan),
			mrec: coverage.NewRecorder(plan),
			m:    New(p, nil),
			rnd:  rand.New(rand.NewSource(seed)),
		}
		lanes[i].m = New(p, lanes[i].mrec)
		codes[i] = CompileThreaded(p)
		recs[i] = lanes[i].rec
	}
	b := NewBatchMulti(codes, recs)

	check := func(i int, refErr, gotErr error) {
		t.Helper()
		l := lanes[i]
		if msg := sameErr(refErr, gotErr); msg != "" {
			t.Fatalf("lane %d: %s", i, msg)
		}
		if msg := diffWords("out", l.m.Out(), b.Out(i)); msg != "" {
			t.Fatalf("lane %d: %s", i, msg)
		}
		if msg := diffWords("state", l.m.State(), b.State(i)); msg != "" {
			t.Fatalf("lane %d: %s", i, msg)
		}
		if l.m.LastFuelUsed() != b.LastFuelUsed(i) {
			t.Fatalf("lane %d: fuel %d vs %d", i, l.m.LastFuelUsed(), b.LastFuelUsed(i))
		}
		if msg := diffBytes("Curr", l.mrec.Curr, l.rec.Curr); msg != "" {
			t.Fatalf("lane %d: %s", i, msg)
		}
	}

	order := rand.New(rand.NewSource(99))
	for round := 0; round < 2; round++ {
		for _, i := range order.Perm(len(lanes)) {
			check(i, lanes[i].m.Init(), b.Init(i))
		}
		for s := 0; s < 10; s++ {
			for _, i := range order.Perm(len(lanes)) {
				l := lanes[i]
				in := genInputs(l.rnd, l.prog.In)
				l.mrec.BeginStep()
				l.rec.BeginStep()
				check(i, l.m.Step(in), b.Step(i, in))
			}
		}
		// ResetAll zeroes the slabs; fresh machines (and recorders) are the
		// reference for everything that follows.
		b.ResetAll()
		for i := range lanes {
			lanes[i].m = New(lanes[i].prog, lanes[i].mrec)
			lanes[i].mrec.ResetAll()
			lanes[i].rec.ResetAll()
		}
	}
}

func TestGeneratedProgramsAreVerifierClean(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		p, decs := ir.GenProgram(seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := analysis.VerifyStrict(p, planFor(decs)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want BackendKind
		ok   bool
	}{
		{"", BackendSwitch, true},
		{"switch", BackendSwitch, true},
		{"threaded", BackendThreaded, true},
		{"turbo", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if BackendThreaded.String() != "threaded" || !BackendThreaded.Valid() {
		t.Error("BackendThreaded name/validity")
	}
	if BackendKind(42).Valid() {
		t.Error("BackendKind(42) must be invalid")
	}
}
