package vm

import (
	"errors"
	"strings"
	"testing"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// loopProgram builds a step function that spins forever on a backward jump:
// the canonical hang the execution fuel exists to catch.
func loopProgram() *ir.Program {
	var regs int32
	a := ir.NewAsm(&regs)
	x := a.LoadIn(model.Int32, 0)
	a.StoreOut(0, x)
	back := a.Emit(ir.Instr{Op: ir.OpJmp, Imm: 0}) // jump back to the load
	a.NoteLoop(back, "Spin/forever while")
	a.Halt()
	init := ir.NewAsm(&regs)
	init.Halt()
	p := &ir.Program{
		Name: "Spin", Init: init.Instrs, Step: a.Instrs, NumRegs: int(regs),
		In:  []model.Field{{Name: "x", Type: model.Int32}},
		Out: []model.Field{{Name: "o", Type: model.Int32}},
	}
	for _, s := range a.Loops {
		p.LoopSites = append(p.LoopSites, ir.LoopSite{Func: "step", PC: s.PC, Label: s.Label})
	}
	return p
}

func TestFuelExhaustionReturnsHangError(t *testing.T) {
	p := loopProgram()
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		m := mk(p, nil)
		m.SetFuel(1000)
		if err := m.Init(); err != nil {
			t.Fatalf("init must not hang: %v", err)
		}
		err := m.Step([]uint64{1})
		if err == nil {
			t.Fatal("infinite loop must exhaust fuel")
		}
		var hang *HangError
		if !errors.As(err, &hang) {
			t.Fatalf("want *HangError, got %T: %v", err, err)
		}
		if hang.Func != "step" || hang.Fuel != 1000 {
			t.Errorf("hang = %+v, want step with fuel 1000", hang)
		}
		if hang.Site != "Spin/forever while" {
			t.Errorf("site = %q, want the noted loop label", hang.Site)
		}
		if !strings.Contains(hang.Error(), "Spin/forever while") {
			t.Errorf("message should name the loop: %q", hang.Error())
		}
		if got := m.LastFuelUsed(); got != 1000 {
			t.Errorf("LastFuelUsed = %d, want the whole budget", got)
		}
	})
}

func TestFuelRechargesPerCall(t *testing.T) {
	// A terminating program must run forever on a per-call budget barely
	// above its cost: fuel is per call, not cumulative.
	p := binProgram(ir.OpAdd, model.Int32)
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		m := mk(p, nil)
		m.SetFuel(16)
		m.Init()
		for i := 0; i < 10000; i++ {
			if err := m.Step([]uint64{1, 2}); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		if used := m.LastFuelUsed(); used <= 0 || used > 16 {
			t.Errorf("LastFuelUsed = %d, want within (0, 16]", used)
		}
	})
}

func TestSetFuelDefaults(t *testing.T) {
	p := binProgram(ir.OpAdd, model.Int32)
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		m := mk(p, nil)
		if m.Fuel() != DefaultFuel {
			t.Errorf("new machine fuel = %d, want DefaultFuel", m.Fuel())
		}
		m.SetFuel(-5)
		if m.Fuel() != DefaultFuel {
			t.Errorf("SetFuel(-5) = %d, want DefaultFuel restored", m.Fuel())
		}
		m.SetFuel(42)
		if m.Fuel() != 42 {
			t.Errorf("SetFuel(42) = %d", m.Fuel())
		}
	})
}

func TestLoopSiteForPrefersNearestBackEdge(t *testing.T) {
	p := &ir.Program{LoopSites: []ir.LoopSite{
		{Func: "step", PC: 10, Label: "outer"},
		{Func: "step", PC: 6, Label: "inner"},
		{Func: "init", PC: 3, Label: "init-loop"},
	}}
	// A pc inside the inner loop body reports the inner loop: its back edge
	// is the nearest one at-or-after the pc.
	if got := p.LoopSiteFor("step", 5); got != "inner" {
		t.Errorf("pc 5 = %q, want inner", got)
	}
	// Past the inner back edge, only the outer loop can still be spinning.
	if got := p.LoopSiteFor("step", 8); got != "outer" {
		t.Errorf("pc 8 = %q, want outer", got)
	}
	// Past every back edge: fall back to the last one before the pc.
	if got := p.LoopSiteFor("step", 12); got != "outer" {
		t.Errorf("pc 12 = %q, want outer fallback", got)
	}
	if got := p.LoopSiteFor("init", 1); got != "init-loop" {
		t.Errorf("init pc 1 = %q", got)
	}
	if got := p.LoopSiteFor("other", 1); got != "" {
		t.Errorf("unknown fn = %q, want empty", got)
	}
}

// fusedPairProgram emits a step whose whole body is superinstruction food:
// const+cmp+branch guarding a state accumulate, probe+branch diamonds, and a
// mov+jmp join — every shape the fuser rewrites.
func fusedPairProgram() *ir.Program {
	var regs int32
	a := ir.NewAsm(&regs)
	x := a.LoadIn(model.Int32, 0)
	s := a.LoadState(model.Int32, 0)
	acc := a.Bin(ir.OpAdd, model.Int32, s, x)
	a.StoreState(0, acc)
	lim := a.ConstVal(model.Int32, 100)
	cond := a.Bin(ir.OpLt, model.Int32, acc, lim)
	j := a.JmpIfNot(cond)
	a.StoreOut(0, acc)
	j2 := a.Jmp()
	a.Patch(j)
	a.StoreOut(0, lim)
	a.Patch(j2)
	a.Halt()
	init := ir.NewAsm(&regs)
	z := init.ConstVal(model.Int32, 0)
	init.StoreState(0, z)
	init.Halt()
	return &ir.Program{
		Name: "fuelpair", Init: init.Instrs, Step: a.Instrs,
		NumRegs: int(regs), NumState: 1,
		In:  []model.Field{{Name: "x", Type: model.Int32}},
		Out: []model.Field{{Name: "o", Type: model.Int32}},
	}
}

// TestFusedFuelParity pins the superinstruction fuel contract: a fused span
// consumes exactly as much fuel as its unfused instructions, LastFuelUsed is
// identical on every backend, and a budget that lands inside a fused span
// aborts at the precise sub-instruction pc the reference interpreter reports.
func TestFusedFuelParity(t *testing.T) {
	p := fusedPairProgram()
	if CompileThreaded(p).Fused() == 0 {
		t.Fatal("program must contain fused spans for this test to mean anything")
	}

	ref := New(p, nil)
	if err := ref.Init(); err != nil {
		t.Fatal(err)
	}
	if err := ref.Step([]uint64{model.EncodeInt(model.Int32, 7)}); err != nil {
		t.Fatal(err)
	}
	refUsed := ref.LastFuelUsed()

	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		m := mk(p, nil)
		if err := m.Init(); err != nil {
			t.Fatal(err)
		}
		if err := m.Step([]uint64{model.EncodeInt(model.Int32, 7)}); err != nil {
			t.Fatal(err)
		}
		if got := m.LastFuelUsed(); got != refUsed {
			t.Errorf("LastFuelUsed = %d, reference charges %d", got, refUsed)
		}
	})

	// Sweep every budget from 1 to past the full cost: hang pc, hang fuel
	// and partial effects must match the reference at each one.
	in := []uint64{model.EncodeInt(model.Int32, 7)}
	for budget := int64(1); budget <= refUsed+2; budget++ {
		refM := New(p, nil)
		refM.SetFuel(budget)
		refInitErr := refM.Init()
		var refStepErr error
		if refInitErr == nil {
			refStepErr = refM.Step(in)
		}
		forEachBackend(t, func(t *testing.T, mk makeBackend) {
			m := mk(p, nil)
			m.SetFuel(budget)
			gotInitErr := m.Init()
			if msg := sameErr(refInitErr, gotInitErr); msg != "" {
				t.Fatalf("budget %d init: %s", budget, msg)
			}
			if refInitErr != nil {
				return
			}
			gotStepErr := m.Step(in)
			if msg := sameErr(refStepErr, gotStepErr); msg != "" {
				t.Fatalf("budget %d step: %s", budget, msg)
			}
			if m.LastFuelUsed() != refM.LastFuelUsed() {
				t.Fatalf("budget %d: LastFuelUsed %d vs %d", budget, m.LastFuelUsed(), refM.LastFuelUsed())
			}
			if msg := diffWords("out", refM.Out(), m.Out()); msg != "" {
				t.Fatalf("budget %d: %s", budget, msg)
			}
			if msg := diffWords("state", refM.State(), m.State()); msg != "" {
				t.Fatalf("budget %d: %s", budget, msg)
			}
		})
	}
}

// TestFusionDoesNotChangeInstructionCharge compiles with and without fusion
// opportunities blocked (a jump target between every pair kills fusion) and
// checks the charge is the instruction count either way.
func TestFusedSpanChargesPerInstruction(t *testing.T) {
	p := fusedPairProgram()
	m := New(p, nil)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	if err := m.Step([]uint64{model.EncodeInt(model.Int32, 1)}); err != nil {
		t.Fatal(err)
	}
	want := m.LastFuelUsed()

	tm := NewThreaded(p, nil)
	if err := tm.Init(); err != nil {
		t.Fatal(err)
	}
	if err := tm.Step([]uint64{model.EncodeInt(model.Int32, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := tm.LastFuelUsed(); got != want {
		t.Fatalf("threaded charges %d for the step, switch charges %d — fusion must not change the fuel bill", got, want)
	}
}
