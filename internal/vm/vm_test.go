package vm

import (
	"math"
	"testing"
	"testing/quick"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// binProgram builds a single-op program: out0 = in0 op in1 in type dt.
func binProgram(op ir.Op, dt model.DType) *ir.Program {
	var regs int32
	a := ir.NewAsm(&regs)
	x := a.LoadIn(dt, 0)
	y := a.LoadIn(dt, 1)
	r := a.Bin(op, dt, x, y)
	a.StoreOut(0, r)
	a.Halt()
	init := ir.NewAsm(&regs)
	init.Halt()
	return &ir.Program{
		Name: "bin", Init: init.Instrs, Step: a.Instrs, NumRegs: int(regs),
		In:  []model.Field{{Name: "x", Type: dt}, {Name: "y", Type: dt, Offset: dt.Size()}},
		Out: []model.Field{{Name: "o", Type: dt}},
	}
}

func runBinOn(t *testing.T, mk makeBackend, op ir.Op, dt model.DType, x, y uint64) uint64 {
	t.Helper()
	p := binProgram(op, dt)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := mk(p, nil)
	m.Init()
	m.Step([]uint64{x, y})
	return m.Out()[0]
}

func TestIntegerArithmetic(t *testing.T) {
	cases := []struct {
		op      ir.Op
		dt      model.DType
		x, y, w int64
	}{
		{ir.OpAdd, model.Int8, 100, 50, -106}, // wraps
		{ir.OpAdd, model.Int32, 5, -3, 2},
		{ir.OpSub, model.UInt8, 3, 5, 254}, // wraps
		{ir.OpMul, model.Int16, 300, 200, -5536},
		{ir.OpDiv, model.Int32, 7, 2, 3},
		{ir.OpDiv, model.Int32, -7, 2, -3}, // truncates toward zero
		{ir.OpDiv, model.Int32, 7, 0, 0},   // total division
		{ir.OpMin, model.Int8, -5, 3, -5},
		{ir.OpMax, model.UInt8, 5, 200, 200},
	}
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		for _, c := range cases {
			got := model.DecodeInt(c.dt, runBinOn(t, mk, c.op, c.dt, model.EncodeInt(c.dt, c.x), model.EncodeInt(c.dt, c.y)))
			if got != c.w {
				t.Errorf("%s %s(%d, %d) = %d, want %d", c.dt, c.op, c.x, c.y, got, c.w)
			}
		}
	})
}

func TestFloatArithmetic(t *testing.T) {
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		got := model.DecodeFloat(model.Float64, runBinOn(t, mk, ir.OpDiv, model.Float64,
			model.EncodeFloat(model.Float64, 1), model.EncodeFloat(model.Float64, 0)))
		if got != 0 {
			t.Errorf("float x/0 must be 0 (total), got %v", got)
		}
		got = model.DecodeFloat(model.Float32, runBinOn(t, mk, ir.OpMul, model.Float32,
			model.EncodeFloat(model.Float32, 1.5), model.EncodeFloat(model.Float32, 2)))
		if got != 3 {
			t.Errorf("float32 mul: %v", got)
		}
	})
}

// Property: comparisons agree with a big-integer reference for every
// signed/unsigned type, on every backend.
func TestCompareAgainstReference(t *testing.T) {
	ops := map[ir.Op]func(a, b int64) bool{
		ir.OpEq: func(a, b int64) bool { return a == b },
		ir.OpNe: func(a, b int64) bool { return a != b },
		ir.OpLt: func(a, b int64) bool { return a < b },
		ir.OpLe: func(a, b int64) bool { return a <= b },
		ir.OpGt: func(a, b int64) bool { return a > b },
		ir.OpGe: func(a, b int64) bool { return a >= b },
	}
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		for op, ref := range ops {
			prop := func(x, y int32) bool {
				for _, dt := range []model.DType{model.Int8, model.UInt16, model.Int32, model.UInt32} {
					xr := model.EncodeInt(dt, int64(x))
					yr := model.EncodeInt(dt, int64(y))
					want := ref(model.DecodeInt(dt, xr), model.DecodeInt(dt, yr))
					got := runBinOn(t, mk, op, dt, xr, yr) != 0
					if got != want {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
				t.Errorf("%s: %v", op, err)
			}
		}
	})
}

func TestStatePersistsAcrossStepsAndResets(t *testing.T) {
	var regs int32
	a := ir.NewAsm(&regs)
	s := a.LoadState(model.Int32, 0)
	one := a.ConstVal(model.Int32, 1)
	next := a.Bin(ir.OpAdd, model.Int32, s, one)
	a.StoreState(0, next)
	a.StoreOut(0, s)
	a.Halt()
	init := ir.NewAsm(&regs)
	iv := init.ConstVal(model.Int32, 10)
	init.StoreState(0, iv)
	init.Halt()
	p := &ir.Program{
		Name: "ctr", Init: init.Instrs, Step: a.Instrs,
		NumRegs: int(regs), NumState: 1,
		Out: []model.Field{{Name: "o", Type: model.Int32}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		m := mk(p, nil)
		m.Init()
		for want := int64(10); want < 14; want++ {
			m.Step(nil)
			if got := model.DecodeInt(model.Int32, m.Out()[0]); got != want {
				t.Fatalf("counter: got %d, want %d", got, want)
			}
		}
		m.Init()
		m.Step(nil)
		if got := model.DecodeInt(model.Int32, m.Out()[0]); got != 10 {
			t.Fatalf("Init must reset state: got %d", got)
		}
	})
}

func TestUnaryMathTotality(t *testing.T) {
	var regs int32
	a := ir.NewAsm(&regs)
	x := a.LoadIn(model.Float64, 0)
	a.StoreOut(0, a.Un(ir.OpSqrt, model.Float64, x))
	a.StoreOut(1, a.Un(ir.OpLog, model.Float64, x))
	a.Halt()
	init := ir.NewAsm(&regs)
	init.Halt()
	p := &ir.Program{
		Name: "m", Init: init.Instrs, Step: a.Instrs, NumRegs: int(regs),
		In:  []model.Field{{Name: "x", Type: model.Float64}},
		Out: []model.Field{{Name: "s", Type: model.Float64}, {Name: "l", Type: model.Float64, Offset: 8}},
	}
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		m := mk(p, nil)
		m.Init()
		m.Step([]uint64{model.EncodeFloat(model.Float64, -4)})
		if model.DecodeFloat(model.Float64, m.Out()[0]) != 0 {
			t.Error("sqrt of negative must be 0 (total)")
		}
		if model.DecodeFloat(model.Float64, m.Out()[1]) != 0 {
			t.Error("log of negative must be 0 (total)")
		}
		m.Step([]uint64{model.EncodeFloat(model.Float64, math.E)})
		if got := model.DecodeFloat(model.Float64, m.Out()[1]); math.Abs(got-1) > 1e-12 {
			t.Errorf("log(e) = %v", got)
		}
	})
}

func TestShiftsMaskAmount(t *testing.T) {
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		got := model.DecodeInt(model.Int32, runBinOn(t, mk, ir.OpShl, model.Int32,
			model.EncodeInt(model.Int32, 1), model.EncodeInt(model.Int32, 33)))
		if got != 2 { // 33 & 31 == 1
			t.Errorf("shift mask: got %d, want 2", got)
		}
		got = model.DecodeInt(model.Int32, runBinOn(t, mk, ir.OpShr, model.Int32,
			model.EncodeInt(model.Int32, -8), model.EncodeInt(model.Int32, 1)))
		if got != -4 { // arithmetic shift for signed
			t.Errorf("arithmetic shift: got %d, want -4", got)
		}
	})
}

func TestBoolOpsNormalize(t *testing.T) {
	var regs int32
	a := ir.NewAsm(&regs)
	x := a.LoadIn(model.Bool, 0)
	y := a.LoadIn(model.Bool, 1)
	a.StoreOut(0, a.Bin(ir.OpAnd, model.Bool, x, y))
	a.StoreOut(1, a.Bin(ir.OpXor, model.Bool, x, y))
	a.StoreOut(2, a.Un(ir.OpNot, model.Bool, x))
	a.Halt()
	init := ir.NewAsm(&regs)
	init.Halt()
	p := &ir.Program{
		Name: "b", Init: init.Instrs, Step: a.Instrs, NumRegs: int(regs),
		In: []model.Field{{Name: "x", Type: model.Bool}, {Name: "y", Type: model.Bool, Offset: 1}},
		Out: []model.Field{
			{Name: "and", Type: model.Bool}, {Name: "xor", Type: model.Bool, Offset: 1},
			{Name: "not", Type: model.Bool, Offset: 2},
		},
	}
	forEachBackend(t, func(t *testing.T, mk makeBackend) {
		m := mk(p, nil)
		m.Init()
		m.Step([]uint64{1, 0})
		if m.Out()[0] != 0 || m.Out()[1] != 1 || m.Out()[2] != 0 {
			t.Errorf("bool ops: %v", m.Out())
		}
		m.Step([]uint64{1, 1})
		if m.Out()[0] != 1 || m.Out()[1] != 0 {
			t.Errorf("bool ops: %v", m.Out())
		}
	})
}
