package vm

import (
	"math"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// EvalPure evaluates one instruction whose result is a pure function of its
// register operands, using exactly the semantics of Machine.exec — the
// optimizer's constant folder must be bit-identical to the VM or the
// translation validator will (rightly) reject its output. read supplies the
// raw word of each operand register. The second result is false for opcodes
// whose value is not register-pure (loads, stores, control flow, probes,
// nop), which the caller must not fold.
func EvalPure(ins *ir.Instr, read func(int32) uint64) (uint64, bool) {
	switch ins.Op {
	case ir.OpConst:
		return ins.Imm, true
	case ir.OpMov:
		return read(ins.A), true

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax:
		return arith(ins.Op, ins.DT, read(ins.A), read(ins.B)), true
	case ir.OpNeg:
		if ins.DT.IsFloat() {
			return model.EncodeFloat(ins.DT, -model.DecodeFloat(ins.DT, read(ins.A))), true
		}
		return model.EncodeInt(ins.DT, -model.DecodeInt(ins.DT, read(ins.A))), true
	case ir.OpAbs:
		if ins.DT.IsFloat() {
			return model.EncodeFloat(ins.DT, math.Abs(model.DecodeFloat(ins.DT, read(ins.A)))), true
		}
		v := model.DecodeInt(ins.DT, read(ins.A))
		if v < 0 {
			v = -v
		}
		return model.EncodeInt(ins.DT, v), true

	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return compare(ins.Op, ins.DT, read(ins.A), read(ins.B)), true

	case ir.OpAnd:
		return read(ins.A) & read(ins.B) & 1, true
	case ir.OpOr:
		return (read(ins.A) | read(ins.B)) & 1, true
	case ir.OpXor:
		return (read(ins.A) ^ read(ins.B)) & 1, true
	case ir.OpNot:
		return (read(ins.A) & 1) ^ 1, true

	case ir.OpBitAnd:
		return model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, read(ins.A))&model.DecodeInt(ins.DT, read(ins.B))), true
	case ir.OpBitOr:
		return model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, read(ins.A))|model.DecodeInt(ins.DT, read(ins.B))), true
	case ir.OpBitXor:
		return model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, read(ins.A))^model.DecodeInt(ins.DT, read(ins.B))), true
	case ir.OpShl:
		sh := uint(model.DecodeInt(ins.DT, read(ins.B))) & 31
		return model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, read(ins.A))<<sh), true
	case ir.OpShr:
		sh := uint(model.DecodeInt(ins.DT, read(ins.B))) & 31
		return model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, read(ins.A))>>sh), true

	case ir.OpTruth:
		if model.Truth(ins.DT2, read(ins.A)) {
			return 1, true
		}
		return 0, true
	case ir.OpSelect:
		if read(ins.A) != 0 {
			return read(ins.B), true
		}
		return read(ins.C), true
	case ir.OpCast:
		return model.Cast(ins.DT, ins.DT2, read(ins.A)), true

	case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
		ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		return unaryMath(ins.Op, ins.DT, read(ins.A)), true
	}
	return 0, false
}
