package vm

import (
	"fmt"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
)

// Backend is one execution engine for a lowered program. Every backend
// implements the exact same observable semantics — raw output words, state
// vector, probe stream, fuel accounting and HangError attribution — which
// the cross-backend differential rig (backend_test.go) and the native fuzz
// targets enforce instruction by instruction. The switch-dispatch Machine is
// the reference; the direct-threaded backend is the fast path campaigns run.
type Backend interface {
	// Init resets persistent state and outputs, then runs the program's
	// init function. Returns *HangError when the fuel budget is exhausted.
	Init() error
	// Step runs one model iteration with the given input tuple.
	Step(in []uint64) error
	// Out returns the output values of the last step (reused across steps).
	Out() []uint64
	// State exposes the persistent state vector.
	State() []uint64
	// SetFuel sets the per-call instruction budget (n <= 0 = DefaultFuel).
	SetFuel(n int64)
	// Fuel returns the per-call instruction budget.
	Fuel() int64
	// LastFuelUsed returns the instructions consumed by the last call.
	LastFuelUsed() int64
	// Program returns the program the backend executes.
	Program() *ir.Program
}

// Machine (the reference switch interpreter) is a Backend.
var _ Backend = (*Machine)(nil)

// BackendKind selects an execution backend.
type BackendKind uint8

// The available backends.
const (
	// BackendSwitch is the original one-switch-per-instruction interpreter:
	// the reference semantics every other backend is differentially tested
	// against.
	BackendSwitch BackendKind = iota
	// BackendThreaded compiles the program once into a slice of Go closures
	// (direct-threaded dispatch) with fused superinstructions for the hot
	// pairs the lowering emits.
	BackendThreaded
	numBackendKinds
)

var backendNames = [...]string{
	BackendSwitch:   "switch",
	BackendThreaded: "threaded",
}

func (k BackendKind) String() string {
	if int(k) < len(backendNames) {
		return backendNames[k]
	}
	return fmt.Sprintf("backend(%d)", uint8(k))
}

// Valid reports whether k names a defined backend.
func (k BackendKind) Valid() bool { return k < numBackendKinds }

// ParseBackend resolves a backend name as spelled on the CLI and the daemon
// API. The empty string selects the switch reference backend.
func ParseBackend(s string) (BackendKind, error) {
	switch s {
	case "", "switch":
		return BackendSwitch, nil
	case "threaded":
		return BackendThreaded, nil
	}
	return 0, fmt.Errorf("vm: unknown backend %q (want switch or threaded)", s)
}

// NewBackend creates a machine of the given kind for the program. rec may be
// nil to run without coverage collection.
func NewBackend(k BackendKind, p *ir.Program, rec *coverage.Recorder) Backend {
	if k == BackendThreaded {
		return NewThreaded(p, rec)
	}
	return New(p, rec)
}
