// Package vm executes lowered IR programs. It is the in-process stand-in for
// the natively compiled fuzz code of the paper: a flat register machine with
// no interpretation of the model graph, no boxing and no dispatch beyond one
// opcode switch — the execution substrate that gives CFTCG its four-orders-
// of-magnitude speed advantage over engine-based simulation.
package vm

import (
	"fmt"
	"math"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// DefaultFuel is the per-call instruction budget of a machine. Legitimate
// step functions stay far below it (the largest benchmark model executes a
// few thousand instructions per iteration, and script while-loops are capped
// at mlfunc.MaxWhileIter); a fuzzed input that burns a million instructions
// in one step is wedged, and the campaign wants a Hang finding instead of a
// dead process.
const DefaultFuel = 1 << 20

// HangError reports that one init or step call exhausted its instruction
// fuel. PC is where execution was aborted and Site names the nearest lowered
// loop construct, so the finding points at the model element that spun.
type HangError struct {
	Func string // "init" or "step"
	PC   int
	Fuel int64
	Site string
}

func (e *HangError) Error() string {
	msg := fmt.Sprintf("vm: %s exhausted %d-instruction fuel at pc %d", e.Func, e.Fuel, e.PC)
	if e.Site != "" {
		msg += " (loop " + e.Site + ")"
	}
	return msg
}

// Machine executes one program instance. It owns the register file, the
// persistent state vector, and the output buffer; the coverage recorder is
// shared with the fuzzing loop.
type Machine struct {
	prog  *ir.Program
	regs  []uint64
	state []uint64
	out   []uint64
	rec   *coverage.Recorder
	fuel  int64 // per-call instruction budget
	used  int64 // instructions consumed by the last call
}

// New creates a machine for the program. rec may be nil to run without
// coverage collection (pure execution benchmarks).
func New(p *ir.Program, rec *coverage.Recorder) *Machine {
	return &Machine{
		prog:  p,
		regs:  make([]uint64, p.NumRegs),
		state: make([]uint64, p.NumState),
		out:   make([]uint64, len(p.Out)),
		rec:   rec,
		fuel:  DefaultFuel,
	}
}

// SetFuel sets the per-call instruction budget; n <= 0 restores DefaultFuel.
func (m *Machine) SetFuel(n int64) {
	if n <= 0 {
		n = DefaultFuel
	}
	m.fuel = n
}

// Fuel returns the per-call instruction budget.
func (m *Machine) Fuel() int64 { return m.fuel }

// LastFuelUsed returns how many instructions the most recent Init or Step
// call executed — the fuzzing loop uses it to spot near-hang inputs and
// re-check its wall-clock budget early.
func (m *Machine) LastFuelUsed() int64 { return m.used }

// Program returns the machine's program.
func (m *Machine) Program() *ir.Program { return m.prog }

// Out returns the output values of the last step, one raw value per outport
// field. The slice is reused across steps.
func (m *Machine) Out() []uint64 { return m.out }

// State exposes the persistent state vector (tests inspect it).
func (m *Machine) State() []uint64 { return m.state }

// Init resets the machine and runs the program's init function — the
// "model initialization code" the fuzz driver calls for every test input.
// It returns a *HangError when the init function exhausts its fuel.
func (m *Machine) Init() error {
	for i := range m.state {
		m.state[i] = 0
	}
	for i := range m.out {
		m.out[i] = 0
	}
	return m.exec("init", m.prog.Init, nil)
}

// Step runs one model iteration with the given input tuple (one raw value
// per inport field). It returns a *HangError when the step exhausts its
// instruction fuel (a runaway loop on this input).
func (m *Machine) Step(in []uint64) error {
	return m.exec("step", m.prog.Step, in)
}

func (m *Machine) exec(fn string, code []ir.Instr, in []uint64) error {
	regs := m.regs
	rec := m.rec
	fuel := m.fuel
	for pc := 0; pc < len(code); {
		if fuel--; fuel < 0 {
			m.used = m.fuel
			return &HangError{Func: fn, PC: pc, Fuel: m.fuel, Site: m.prog.LoopSiteFor(fn, pc)}
		}
		ins := &code[pc]
		switch ins.Op {
		case ir.OpNop:

		case ir.OpConst:
			regs[ins.Dst] = ins.Imm
		case ir.OpMov:
			regs[ins.Dst] = regs[ins.A]

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax:
			regs[ins.Dst] = arith(ins.Op, ins.DT, regs[ins.A], regs[ins.B])
		case ir.OpNeg:
			if ins.DT.IsFloat() {
				regs[ins.Dst] = model.EncodeFloat(ins.DT, -model.DecodeFloat(ins.DT, regs[ins.A]))
			} else {
				regs[ins.Dst] = model.EncodeInt(ins.DT, -model.DecodeInt(ins.DT, regs[ins.A]))
			}
		case ir.OpAbs:
			if ins.DT.IsFloat() {
				regs[ins.Dst] = model.EncodeFloat(ins.DT, math.Abs(model.DecodeFloat(ins.DT, regs[ins.A])))
			} else {
				v := model.DecodeInt(ins.DT, regs[ins.A])
				if v < 0 {
					v = -v
				}
				regs[ins.Dst] = model.EncodeInt(ins.DT, v)
			}

		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			regs[ins.Dst] = compare(ins.Op, ins.DT, regs[ins.A], regs[ins.B])

		case ir.OpAnd:
			regs[ins.Dst] = regs[ins.A] & regs[ins.B] & 1
		case ir.OpOr:
			regs[ins.Dst] = (regs[ins.A] | regs[ins.B]) & 1
		case ir.OpXor:
			regs[ins.Dst] = (regs[ins.A] ^ regs[ins.B]) & 1
		case ir.OpNot:
			regs[ins.Dst] = (regs[ins.A] & 1) ^ 1

		case ir.OpBitAnd:
			regs[ins.Dst] = model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, regs[ins.A])&model.DecodeInt(ins.DT, regs[ins.B]))
		case ir.OpBitOr:
			regs[ins.Dst] = model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, regs[ins.A])|model.DecodeInt(ins.DT, regs[ins.B]))
		case ir.OpBitXor:
			regs[ins.Dst] = model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, regs[ins.A])^model.DecodeInt(ins.DT, regs[ins.B]))
		case ir.OpShl:
			sh := uint(model.DecodeInt(ins.DT, regs[ins.B])) & 31
			regs[ins.Dst] = model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, regs[ins.A])<<sh)
		case ir.OpShr:
			sh := uint(model.DecodeInt(ins.DT, regs[ins.B])) & 31
			regs[ins.Dst] = model.EncodeInt(ins.DT, model.DecodeInt(ins.DT, regs[ins.A])>>sh)

		case ir.OpTruth:
			if model.Truth(ins.DT2, regs[ins.A]) {
				regs[ins.Dst] = 1
			} else {
				regs[ins.Dst] = 0
			}
		case ir.OpSelect:
			if regs[ins.A] != 0 {
				regs[ins.Dst] = regs[ins.B]
			} else {
				regs[ins.Dst] = regs[ins.C]
			}
		case ir.OpCast:
			regs[ins.Dst] = model.Cast(ins.DT, ins.DT2, regs[ins.A])

		case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
			ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
			regs[ins.Dst] = unaryMath(ins.Op, ins.DT, regs[ins.A])

		case ir.OpLoadIn:
			regs[ins.Dst] = in[ins.Imm]
		case ir.OpStoreOut:
			m.out[ins.Imm] = regs[ins.A]
		case ir.OpLoadState:
			regs[ins.Dst] = m.state[ins.Imm]
		case ir.OpStoreState:
			m.state[ins.Imm] = regs[ins.A]

		case ir.OpJmp:
			pc = int(ins.Imm)
			continue
		case ir.OpJmpIf:
			if regs[ins.A] != 0 {
				pc = int(ins.Imm)
				continue
			}
		case ir.OpJmpIfNot:
			if regs[ins.A] == 0 {
				pc = int(ins.Imm)
				continue
			}

		case ir.OpProbe:
			if rec != nil {
				rec.Outcome(int(ins.A), int(ins.B))
			}
		case ir.OpCondProbe:
			if rec != nil {
				rec.Cond(int(ins.A), regs[ins.B] != 0)
			}

		case ir.OpHalt:
			m.used = m.fuel - fuel
			return nil
		}
		pc++
	}
	m.used = m.fuel - fuel
	return nil
}

// arith computes a binary arithmetic op in type dt over raw values.
func arith(op ir.Op, dt model.DType, a, b uint64) uint64 {
	if dt.IsFloat() {
		x := model.DecodeFloat(dt, a)
		y := model.DecodeFloat(dt, b)
		var v float64
		switch op {
		case ir.OpAdd:
			v = x + y
		case ir.OpSub:
			v = x - y
		case ir.OpMul:
			v = x * y
		case ir.OpDiv:
			if y == 0 {
				v = 0 // division is total: x/0 = 0 in both engines
			} else {
				v = x / y
			}
		case ir.OpMin:
			v = math.Min(x, y)
		case ir.OpMax:
			v = math.Max(x, y)
		}
		return model.EncodeFloat(dt, v)
	}
	x := model.DecodeInt(dt, a)
	y := model.DecodeInt(dt, b)
	var v int64
	switch op {
	case ir.OpAdd:
		v = x + y
	case ir.OpSub:
		v = x - y
	case ir.OpMul:
		v = x * y
	case ir.OpDiv:
		if y == 0 {
			v = 0
		} else {
			v = x / y
		}
	case ir.OpMin:
		v = x
		if y < x {
			v = y
		}
	case ir.OpMax:
		v = x
		if y > x {
			v = y
		}
	}
	return model.EncodeInt(dt, v)
}

// compare evaluates a relational op in type dt, returning 0 or 1.
func compare(op ir.Op, dt model.DType, a, b uint64) uint64 {
	var res bool
	if dt.IsFloat() {
		x := model.DecodeFloat(dt, a)
		y := model.DecodeFloat(dt, b)
		switch op {
		case ir.OpEq:
			res = x == y
		case ir.OpNe:
			res = x != y
		case ir.OpLt:
			res = x < y
		case ir.OpLe:
			res = x <= y
		case ir.OpGt:
			res = x > y
		case ir.OpGe:
			res = x >= y
		}
	} else {
		x := model.DecodeInt(dt, a)
		y := model.DecodeInt(dt, b)
		switch op {
		case ir.OpEq:
			res = x == y
		case ir.OpNe:
			res = x != y
		case ir.OpLt:
			res = x < y
		case ir.OpLe:
			res = x <= y
		case ir.OpGt:
			res = x > y
		case ir.OpGe:
			res = x >= y
		}
	}
	if res {
		return 1
	}
	return 0
}

// unaryMath evaluates the floating-point unary functions. Non-float DTs
// round-trip through float64, matching the C library calls the generated
// code would make.
func unaryMath(op ir.Op, dt model.DType, a uint64) uint64 {
	x := model.Decode(dt, a)
	var v float64
	switch op {
	case ir.OpSqrt:
		if x < 0 {
			v = 0
		} else {
			v = math.Sqrt(x)
		}
	case ir.OpExp:
		v = math.Exp(x)
	case ir.OpLog:
		if x <= 0 {
			v = 0
		} else {
			v = math.Log(x)
		}
	case ir.OpSin:
		v = math.Sin(x)
	case ir.OpCos:
		v = math.Cos(x)
	case ir.OpTan:
		v = math.Tan(x)
	case ir.OpFloor:
		v = math.Floor(x)
	case ir.OpCeil:
		v = math.Ceil(x)
	case ir.OpRound:
		v = math.Round(x)
	case ir.OpTrunc:
		v = math.Trunc(x)
	}
	return model.Encode(dt, v)
}
