GO ?= go

.PHONY: all build test race vet fmt lint check bench chaos mutate-smoke opt-smoke cover fuzz-smoke

all: check

build:
	$(GO) build ./...

# -shuffle=on randomizes test and subtest order every run, flushing out
# inter-test state dependence (the seed is printed for replay).
test:
	$(GO) test -shuffle=on ./...

# Race runs in -short mode: the headline campaign comparisons are
# timing-sensitive and starve under the race detector's ~15x slowdown; the
# plain `test` target runs them at native speed.
race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint is the fast pre-commit gate: formatting, vet, and a full-speed race
# pass over the concurrency-bearing packages (the engine's status plane, the
# campaign daemon's shard fan-out, and the shared coverage structures).
# The optimizer and mutation packages ride along in -short mode: their
# property tests (1k-case lockstep sweeps, full mutant grinds) starve under
# the race detector's ~15x slowdown.
lint: fmt vet
	$(GO) test -race ./internal/fuzz ./internal/campaign ./internal/coverage ./internal/vm ./internal/ir
	$(GO) test -short -race ./internal/opt ./internal/mutate

# mutate-smoke is the mutation-testing end-to-end gate: generate mutants
# for a small model, kill them with a freshly fuzzed suite, and require a
# mutation score in (0, 1] — some mutant killed, none double-counted.
mutate-smoke:
	@out=$$($(GO) run ./cmd/cftcg mutate SolarPV -budget 30 -execs 1500 -fuzz-budget 5s -json); \
	score=$$(echo "$$out" | sed -n 's/.*"score": \([0-9.]*\),*/\1/p' | head -n1); \
	echo "mutation score: $$score"; \
	awk "BEGIN { exit !($$score > 0 && $$score <= 1) }" </dev/null \
		|| { echo "mutate-smoke: score $$score outside (0, 1]"; exit 1; }

# opt-smoke pushes every built-in benchmark through the translation-
# validated optimization pipeline via the CLI: each must come out
# verifier-clean and VM-lockstep equivalent (analyze -opt exits non-zero
# and withholds the "optimization validated" line otherwise).
opt-smoke:
	@for m in CPUTask AFC TCP RAC EVCS TWC UTPC SolarPV; do \
		out=$$($(GO) run ./cmd/cftcg analyze $$m -stats -opt) \
			|| { echo "opt-smoke: $$m: optimizer failed"; exit 1; }; \
		echo "$$out" | grep -q "optimization validated" \
			|| { echo "opt-smoke: $$m: missing validation line"; exit 1; }; \
		echo "opt-smoke: $$m: $$(echo "$$out" | sed -n 's/^optimized: //p')"; \
	done

# chaos arms the build-tag-gated failpoints (internal/faultinject) and runs
# the fault-injection suites under the race detector: torn WAL writes, fsync
# failures, checkpoint panics, hanging shards, and a kill-9 of a real
# journaled daemon process.
chaos:
	$(GO) test -race -tags faultinject ./internal/faultinject ./internal/wal ./internal/fuzz ./internal/campaign

# cover enforces the statement-coverage floors on the load-bearing
# packages (VM backends, IR); see scripts/cover.sh for the committed floors.
cover:
	scripts/cover.sh

# fuzz-smoke runs the native fuzz targets briefly past their committed
# corpora: the cross-backend lockstep rig chews randomized programs on all
# three backends, and the disassembler round-tripper hammers the parser.
fuzz-smoke:
	$(GO) test ./internal/vm -run '^$$' -fuzz '^FuzzVMBackendsLockstep$$' -fuzztime 10s
	$(GO) test ./internal/ir -run '^$$' -fuzz '^FuzzDisasmRoundTrip$$' -fuzztime 5s

check: fmt vet build test race cover fuzz-smoke mutate-smoke opt-smoke chaos

bench:
	$(GO) test -bench=. -benchmem -run=^$$
