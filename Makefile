GO ?= go

.PHONY: all build test race vet fmt lint check bench chaos mutate-smoke opt-smoke

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race runs in -short mode: the headline campaign comparisons are
# timing-sensitive and starve under the race detector's ~15x slowdown; the
# plain `test` target runs them at native speed.
race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) when any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint is the fast pre-commit gate: formatting, vet, and a full-speed race
# pass over the concurrency-bearing packages (the engine's status plane, the
# campaign daemon's shard fan-out, and the shared coverage structures).
# The optimizer and mutation packages ride along in -short mode: their
# property tests (1k-case lockstep sweeps, full mutant grinds) starve under
# the race detector's ~15x slowdown.
lint: fmt vet
	$(GO) test -race ./internal/fuzz ./internal/campaign ./internal/coverage
	$(GO) test -short -race ./internal/opt ./internal/mutate

# mutate-smoke is the mutation-testing end-to-end gate: generate mutants
# for a small model, kill them with a freshly fuzzed suite, and require a
# mutation score in (0, 1] — some mutant killed, none double-counted.
mutate-smoke:
	@out=$$($(GO) run ./cmd/cftcg mutate SolarPV -budget 30 -execs 1500 -fuzz-budget 5s -json); \
	score=$$(echo "$$out" | sed -n 's/.*"score": \([0-9.]*\),*/\1/p' | head -n1); \
	echo "mutation score: $$score"; \
	awk "BEGIN { exit !($$score > 0 && $$score <= 1) }" </dev/null \
		|| { echo "mutate-smoke: score $$score outside (0, 1]"; exit 1; }

# opt-smoke pushes every built-in benchmark through the translation-
# validated optimization pipeline via the CLI: each must come out
# verifier-clean and VM-lockstep equivalent (analyze -opt exits non-zero
# and withholds the "optimization validated" line otherwise).
opt-smoke:
	@for m in CPUTask AFC TCP RAC EVCS TWC UTPC SolarPV; do \
		out=$$($(GO) run ./cmd/cftcg analyze $$m -stats -opt) \
			|| { echo "opt-smoke: $$m: optimizer failed"; exit 1; }; \
		echo "$$out" | grep -q "optimization validated" \
			|| { echo "opt-smoke: $$m: missing validation line"; exit 1; }; \
		echo "opt-smoke: $$m: $$(echo "$$out" | sed -n 's/^optimized: //p')"; \
	done

# chaos arms the build-tag-gated failpoints (internal/faultinject) and runs
# the fault-injection suites under the race detector: torn WAL writes, fsync
# failures, checkpoint panics, hanging shards, and a kill-9 of a real
# journaled daemon process.
chaos:
	$(GO) test -race -tags faultinject ./internal/faultinject ./internal/wal ./internal/fuzz ./internal/campaign

check: fmt vet build test race mutate-smoke opt-smoke chaos

bench:
	$(GO) test -bench=. -benchmem -run=^$$
