package cftcg_test

import (
	"testing"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/fuzz"
	"cftcg/internal/harness"
)

// TestHeadlineResult guards the paper's central claim end to end: on every
// benchmark model, a short CFTCG campaign reaches strictly more decision
// coverage than both baselines get with the same budget. Thresholds are
// deliberately loose — this is a regression tripwire, not a benchmark.
func TestHeadlineResult(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign comparison skipped in -short mode")
	}
	cfg := harness.DefaultConfig()
	cfg.Budget = 700 * time.Millisecond
	cfg.Repetitions = 1
	tools := []harness.Tool{harness.ToolSLDV, harness.ToolSimCoTest, harness.ToolCFTCG}

	for _, e := range benchmodels.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			mr, err := harness.RunModel(e, tools, cfg)
			if err != nil {
				t.Fatalf("RunModel: %v", err)
			}
			cftcg := mr.Results[harness.ToolCFTCG]
			sldv := mr.Results[harness.ToolSLDV]
			sim := mr.Results[harness.ToolSimCoTest]
			t.Logf("decision%%: CFTCG %.1f, SLDV %.1f, SimCoTest %.1f",
				cftcg.Decision, sldv.Decision, sim.Decision)
			if cftcg.Decision <= sldv.Decision {
				t.Errorf("CFTCG (%.1f%%) did not beat SLDV (%.1f%%)", cftcg.Decision, sldv.Decision)
			}
			if cftcg.Decision <= sim.Decision {
				t.Errorf("CFTCG (%.1f%%) did not beat SimCoTest (%.1f%%)", cftcg.Decision, sim.Decision)
			}
			if cftcg.Decision < 60 {
				t.Errorf("CFTCG coverage collapsed: %.1f%%", cftcg.Decision)
			}
		})
	}
}

// TestFuzzOnlyAblationDirection guards Figure 8's direction: model-oriented
// fuzzing never loses to the generic-fuzzer ablation at equal budget.
func TestFuzzOnlyAblationDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation skipped in -short mode")
	}
	for _, name := range []string{"SolarPV", "TWC"} {
		e, err := benchmodels.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := codegen.Compile(e.Build())
		if err != nil {
			t.Fatal(err)
		}
		full := fuzz.MustEngine(c, fuzz.Options{Seed: 1, MaxExecs: 15000}).Run()
		only := fuzz.MustEngine(c, fuzz.Options{Seed: 1, Mode: fuzz.ModeFuzzOnly, MaxExecs: 15000}).Run()
		t.Logf("%s: CFTCG %.1f%%/%.1f%%, fuzz-only %.1f%%/%.1f%% (DC/CC)",
			name, full.Report.Decision(), full.Report.Condition(),
			only.Report.Decision(), only.Report.Condition())
		if full.Report.Condition() < only.Report.Condition() {
			t.Errorf("%s: condition coverage regressed vs fuzz-only", name)
		}
		if full.Report.Decision()+5 < only.Report.Decision() {
			t.Errorf("%s: decision coverage far below fuzz-only", name)
		}
	}
}
