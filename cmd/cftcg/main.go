// Command cftcg is the CFTCG command line: generate fuzzing code for a
// model, run the model-oriented fuzzing loop, replay suites for coverage,
// convert binary cases to CSV, and export the built-in benchmarks.
//
// Usage:
//
//	cftcg emit    <model.slx>                 print generated fuzz code
//	cftcg fuzz    <model.slx> [flags]         run fuzzing, write the suite
//	cftcg analyze <model.slx> [flags]         static analysis: lint, dead objectives, influence, -stats/-opt
//	cftcg cov     <model.slx> <case.bin>...   replay cases, report coverage
//	cftcg convert <model.slx> <case.bin>      print one case as CSV
//	cftcg trace   <model.slx> <case.bin>      dump a case as a VCD waveform
//	cftcg info    <model.slx>                 model statistics
//	cftcg mutate  <model.slx> [flags]         mutation-test the generated suite
//	cftcg export  <benchmark> <out.slx>       write a built-in benchmark
//
// `<model.slx>` may also name a built-in benchmark (e.g. SolarPV).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cftcg/internal/analysis"
	"cftcg/internal/benchmodels"
	"cftcg/internal/core"
	"cftcg/internal/fuzz"
	"cftcg/internal/mutate"
	"cftcg/internal/opt"
	"cftcg/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "emit":
		sys := loadSystem(arg(args, 0))
		code := sys.GenerateFuzzCode()
		fmt.Println(code.Driver)
		fmt.Println(code.Init)
		fmt.Println(code.Step)

	case "fuzz":
		fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
		budget := fs.Duration("budget", 5*time.Second, "wall-clock budget")
		execs := fs.Int64("execs", 0, "execution budget (0 = budget only)")
		seed := fs.Int64("seed", 1, "random seed")
		mode := fs.String("mode", "cftcg", "cftcg | fuzz-only | no-iterdiff")
		out := fs.String("o", "", "output directory for the suite")
		maxTuples := fs.Int("max-tuples", 64, "input length cap in tuples")
		workers := fs.Int("workers", 1, "parallel fuzzing workers")
		minimize := fs.Bool("minimize", false, "greedily minimize the suite before writing")
		trim := fs.Bool("trim", false, "shorten each emitted case without losing its coverage")
		seeds := fs.String("seeds", "", "directory of .bin cases to seed the corpus (resume a campaign)")
		fuel := fs.Int64("fuel", 0, "per-step instruction budget; hangs become findings (0 = default ~1M)")
		checkpoint := fs.String("checkpoint", "", "path for periodic crash-safe corpus checkpoints")
		ckptEvery := fs.Duration("checkpoint-every", 30*time.Second, "interval between checkpoints")
		resume := fs.String("resume", "", "checkpoint file to resume the campaign from")
		analyze := fs.Bool("analyze", false, "statically prove objectives dead; exclude them from the report denominators")
		directed := fs.Bool("directed", false, "bias mutation toward input fields that influence unsatisfied objectives")
		optimize := fs.Bool("opt", false, "fuzz the optimized program (translation-validated: identical outputs and probe streams)")
		backendName := fs.String("backend", "", "VM backend: switch (reference) or threaded (differentially proven equal, ~2x faster)")
		check(fs.Parse(args[1:]))
		sys := loadSystem(arg(args, 0))

		m, err := fuzz.ParseMode(*mode)
		check(err)
		backend, err := vm.ParseBackend(*backendName)
		check(err)
		if *analyze {
			if n := analysis.MarkDead(sys.Compiled.Prog, sys.Compiled.Plan); n > 0 {
				fmt.Printf("static analysis: %d dead objective(s) excluded from coverage denominators\n", n)
			}
		}
		// A single checkpoint file cannot represent the independent corpora
		// of multiple workers, so fuzz.RunParallel runs workers 1..N-1
		// stateless. Resuming such an ensemble would silently restore only
		// worker 0 — reject it outright rather than mislead; plain
		// checkpointing degrades visibly, so it only warns. The cftcgd
		// campaign daemon checkpoints and resumes every shard.
		if *workers > 1 && *resume != "" {
			fail(fmt.Errorf("-resume with -workers %d: only worker 0 would resume; "+
				"use -workers 1 or a cftcgd campaign (per-shard checkpoints)", *workers))
		}
		if *workers > 1 && *checkpoint != "" {
			fmt.Fprintf(os.Stderr,
				"cftcg: warning: -checkpoint with -workers %d saves worker 0 only; "+
					"a cftcgd campaign checkpoints every shard\n", *workers)
		}
		opts := fuzz.Options{
			Seed: *seed, Mode: m, Budget: *budget, MaxExecs: *execs, MaxTuples: *maxTuples,
			Fuel:           *fuel,
			CheckpointPath: *checkpoint, CheckpointEvery: *ckptEvery, ResumeFrom: *resume,
			Directed: *directed, Optimize: *optimize, Backend: backend,
		}
		if *seeds != "" {
			seedInputs, err := core.ReadSeedDir(*seeds)
			check(err)
			opts.SeedInputs = seedInputs
			fmt.Printf("seeded corpus with %d case(s) from %s\n", len(seedInputs), *seeds)
		}

		// Graceful shutdown: the first SIGINT/SIGTERM asks the engine to stop
		// (checkpoint is flushed, the report below still prints); a second
		// signal kills the process outright.
		stop := make(chan struct{})
		sigc := make(chan os.Signal, 2)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "cftcg: interrupt — stopping, flushing checkpoint (again to kill)")
			close(stop)
			<-sigc
			os.Exit(1)
		}()
		opts.Stop = stop

		var res *fuzz.Result
		if *workers > 1 {
			res, err = fuzz.RunParallel(sys.Compiled, opts, *workers)
		} else {
			res, err = sys.Fuzz(opts)
		}
		check(err)
		signal.Stop(sigc)
		if *minimize {
			res.Suite.Cases = fuzz.Minimize(sys.Compiled, res.Suite.Cases)
		}
		if *trim {
			for i := range res.Suite.Cases {
				res.Suite.Cases[i].Data = fuzz.Trim(sys.Compiled, res.Suite.Cases[i].Data)
			}
		}
		if res.Stopped {
			fmt.Println("campaign interrupted; partial results follow")
		}
		fmt.Printf("executions: %d, model iterations: %d, corpus: %d, cases: %d\n",
			res.Execs, res.Steps, res.Corpus, len(res.Suite.Cases))
		fmt.Println(res.Report)
		if len(res.Violations) > 0 {
			fmt.Printf("assertion violations: %d input(s) reproduce them\n", len(res.Violations))
		}
		if len(res.Findings) > 0 {
			fmt.Printf("findings: %d distinct (%d occurrences dropped past the cap)\n",
				len(res.Findings), res.DroppedFindings)
			for _, f := range res.Findings {
				fmt.Printf("  [%s] %s x%d: %s\n", f.Kind, f.Site, f.Count, f.Detail)
			}
		}
		if res.CheckpointErr != nil {
			fmt.Fprintln(os.Stderr, "cftcg: checkpoint write failed:", res.CheckpointErr)
		} else if *checkpoint != "" {
			fmt.Printf("checkpoint saved to %s\n", *checkpoint)
		}
		if *out != "" {
			check(sys.WriteSuite(*out, res.Suite))
			fmt.Printf("suite written to %s\n", *out)
		}

	case "analyze":
		fs := flag.NewFlagSet("analyze", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "print the full report as JSON")
		stats := fs.Bool("stats", false, "print per-program instruction counts and dead-store totals")
		doOpt := fs.Bool("opt", false, "run the translation-validated optimizer; with -stats, report the before/after delta")
		check(fs.Parse(args[1:]))
		sys := loadSystem(arg(args, 0))

		// With -opt the rest of the report (lint, dead objectives,
		// influence) describes the *optimized* program — the pipeline's
		// contract is that it stays verifier-clean and observably
		// equivalent, so the analysis remains valid for the original.
		var ostats *opt.Stats
		if *doOpt {
			var err error
			ostats, err = sys.Compiled.Optimize(opt.Config{})
			check(err)
		}
		prog, plan := sys.Compiled.Prog, sys.Compiled.Plan
		issues := analysis.Verify(prog, plan)
		dead := analysis.DeadObjectives(prog, plan)
		inf := analysis.ComputeInfluence(prog, plan)
		isDead := make(map[int]bool, len(dead))
		for _, slot := range dead {
			isDead[slot] = true
		}
		fieldNames := func(idxs []int) []string {
			var names []string
			for _, f := range idxs {
				if f < len(prog.In) {
					names = append(names, prog.In[f].Name)
				}
			}
			return names
		}

		if *asJSON {
			type branchRow struct {
				Branch int      `json:"branch"`
				Label  string   `json:"label"`
				Dead   bool     `json:"dead"`
				Fields []string `json:"fields,omitempty"`
			}
			type statsRow struct {
				InitInstrs int        `json:"initInstrs"`
				StepInstrs int        `json:"stepInstrs"`
				DeadStores int        `json:"deadStores"`
				Opt        *opt.Stats `json:"opt,omitempty"`
			}
			report := struct {
				Model    string      `json:"model"`
				Issues   []string    `json:"issues,omitempty"`
				Dead     []int       `json:"deadObjectives,omitempty"`
				Stats    *statsRow   `json:"stats,omitempty"`
				Branches []branchRow `json:"branches"`
			}{Model: prog.Name, Dead: dead}
			if *stats {
				report.Stats = &statsRow{
					InitInstrs: len(prog.Init),
					StepInstrs: len(prog.Step),
					DeadStores: opt.DeadStoreWarnings(prog, plan),
					Opt:        ostats,
				}
			}
			for _, is := range issues {
				report.Issues = append(report.Issues, is.String())
			}
			for b := 0; b < plan.NumBranches; b++ {
				report.Branches = append(report.Branches, branchRow{
					Branch: b, Label: plan.BranchLabel(b),
					Dead: isDead[b], Fields: fieldNames(inf.Fields(b)),
				})
			}
			out, err := json.MarshalIndent(report, "", "  ")
			check(err)
			fmt.Println(string(out))
			break
		}

		fmt.Printf("model %s: %d branch slots\n\n", prog.Name, plan.NumBranches)
		if *stats {
			fmt.Printf("instructions: init %d, step %d (total %d)\n",
				len(prog.Init), len(prog.Step), len(prog.Init)+len(prog.Step))
			fmt.Printf("dead stores: %d warning(s)\n", opt.DeadStoreWarnings(prog, plan))
			if ostats != nil {
				fmt.Printf("optimized: %s\n", ostats.Summary())
				fmt.Println("optimization validated: every pass translation-validated, final program lockstep-equivalent")
			}
			fmt.Println()
		}
		if len(issues) == 0 {
			fmt.Println("lint: clean")
		} else {
			fmt.Printf("lint: %d issue(s)\n%s", len(issues), analysis.FormatIssues(issues))
		}
		if len(dead) == 0 {
			fmt.Println("dead objectives: none")
		} else {
			fmt.Printf("dead objectives: %d (excluded from adjusted denominators)\n", len(dead))
			for _, slot := range dead {
				fmt.Printf("  %3d  %s\n", slot, plan.BranchLabel(slot))
			}
		}
		fmt.Println("\ninfluence map (branch slot <- input fields):")
		for b := 0; b < plan.NumBranches; b++ {
			mark := ""
			if isDead[b] {
				mark = " [dead]"
			}
			fields := fieldNames(inf.Fields(b))
			if len(fields) == 0 {
				fmt.Printf("  %3d  %s%s <- (none)\n", b, plan.BranchLabel(b), mark)
				continue
			}
			fmt.Printf("  %3d  %s%s <- %s\n", b, plan.BranchLabel(b), mark, strings.Join(fields, ", "))
		}

	case "cov":
		asJSON := false
		files := args[1:]
		if len(files) > 0 && files[0] == "-json" {
			asJSON = true
			files = files[1:]
		}
		sys := loadSystem(arg(args, 0))
		var cases [][]byte
		for _, p := range files {
			data, err := os.ReadFile(p)
			check(err)
			cases = append(cases, data)
		}
		if len(cases) == 0 {
			fail(fmt.Errorf("cov: no case files given"))
		}
		rep, rec := sys.Replay(cases)
		if asJSON {
			out, err := json.MarshalIndent(rep, "", "  ")
			check(err)
			fmt.Println(string(out))
		} else {
			fmt.Println(rep)
			fmt.Print(rec.FormatTable())
		}

	case "convert":
		sys := loadSystem(arg(args, 0))
		data, err := os.ReadFile(arg(args, 1))
		check(err)
		check(sys.ConvertCase(os.Stdout, data))

	case "trace":
		sys := loadSystem(arg(args, 0))
		data, err := os.ReadFile(arg(args, 1))
		check(err)
		check(sys.Trace(os.Stdout, data))

	case "info":
		sys := loadSystem(arg(args, 0))
		lay := sys.Layout()
		fmt.Printf("model %s: %d branch slots, %d decisions, %d conditions\n",
			sys.Model.Name, sys.BranchCount(),
			len(sys.Compiled.Plan.Decisions), len(sys.Compiled.Plan.Conds))
		fmt.Printf("tuple: %d bytes\n", lay.TupleSize)
		for _, f := range lay.Fields {
			fmt.Printf("  +%d %-12s %s\n", f.Offset, f.Name, f.Type)
		}

	case "mutate":
		fs := flag.NewFlagSet("mutate", flag.ExitOnError)
		budget := fs.Int("budget", 100, "mutant pool cap (0 = every mutant)")
		execs := fs.Int64("execs", 5000, "fuzz execution budget for suite generation")
		wall := fs.Duration("fuzz-budget", 5*time.Second, "wall-clock cap on each fuzzing pass")
		seed := fs.Int64("seed", 1, "random seed (mutant sampling and fuzzing)")
		mode := fs.String("mode", "cftcg", "suite generator: cftcg | fuzz-only | no-iterdiff")
		ops := fs.String("ops", "", "comma-separated operator filter ("+strings.Join(mutate.OperatorNames(), ",")+")")
		fuel := fs.Int64("fuel", 0, "per-step mutant instruction budget (0 = default; exhaustion = killed-by-timeout)")
		feedback := fs.Int("feedback", 0, "survivor-directed refuzzing rounds (mutation energy on surviving mutants' input fields)")
		noProve := fs.Bool("no-prove", false, "skip the equivalence prover; proven-unkillable mutants then count as survivors")
		noBatch := fs.Bool("no-batch", false, "run mutants one-machine-at-a-time instead of the batched lane runner (identical report, for debugging)")
		asJSON := fs.Bool("json", false, "print the full report as JSON")
		check(fs.Parse(args[1:]))
		sys := loadSystem(arg(args, 0))

		opNames, err := mutate.FilterOperators(*ops)
		check(err)
		muts := mutate.Generate(sys.Compiled, sys.Model,
			mutate.Config{Operators: opNames, Limit: *budget, Seed: *seed})
		if len(muts) == 0 {
			fail(fmt.Errorf("no mutants generated: mutation surface is empty under operators %q", *ops))
		}

		m, err := fuzz.ParseMode(*mode)
		check(err)
		fuzzOpts := fuzz.Options{Seed: *seed, Mode: m, MaxExecs: *execs, Budget: *wall}
		res, err := sys.Fuzz(fuzzOpts)
		check(err)
		cases := make([][]byte, 0, len(res.Suite.Cases))
		for _, tc := range res.Suite.Cases {
			cases = append(cases, tc.Data)
		}

		rcfg := mutate.RunConfig{Fuel: *fuel, NoProve: *noProve, NoBatch: *noBatch}
		rep := mutate.Run(sys.Compiled, muts, cases, rcfg)
		if !*asJSON {
			sc := mutate.Surface(sys.Compiled.Prog, sys.Model)
			fmt.Printf("model %s: %d mutants (surface %d sites), suite of %d case(s)\n",
				sys.Model.Name, len(muts), sc.Total(), len(cases))
		}
		for r := 1; r <= *feedback && rep.Summary.Survived > 0; r++ {
			// Surviving mutants point back at the input fields that reach
			// them; refuzz with that extra energy, seeded from the suite so
			// far, and rescore on the widened suite.
			o := fuzzOpts
			o.Seed = *seed + int64(r)
			o.MutantBias = rep.FieldBoost(len(sys.Compiled.Prog.In))
			o.SeedInputs = cases
			res, err := sys.Fuzz(o)
			check(err)
			for _, tc := range res.Suite.Cases {
				cases = append(cases, tc.Data)
			}
			prev := rep.Summary
			rep = mutate.Run(sys.Compiled, muts, cases, rcfg)
			if !*asJSON {
				fmt.Printf("feedback round %d: %d -> %d distinct kills (score %.3f -> %.3f)\n",
					r, prev.Killed, rep.Summary.Killed, prev.Score, rep.Summary.Score)
			}
		}
		if *asJSON {
			out, err := json.MarshalIndent(rep, "", "  ")
			check(err)
			fmt.Println(string(out))
			break
		}
		fmt.Println(rep.Summary.String())
		opNamesSorted := make([]string, 0, len(rep.Summary.Operators))
		for n := range rep.Summary.Operators {
			opNamesSorted = append(opNamesSorted, n)
		}
		sort.Strings(opNamesSorted)
		for _, n := range opNamesSorted {
			st := rep.Summary.Operators[n]
			fmt.Printf("  %-14s total %3d  killed %3d  survived %3d  equivalent %3d  duplicate %3d\n",
				n, st.Total, st.Killed, st.Survived, st.Equivalent, st.Duplicates)
		}
		if rep.Summary.TimeoutKills+rep.Summary.CrashKills > 0 {
			fmt.Printf("terminal kills: %d timeout, %d crash\n",
				rep.Summary.TimeoutKills, rep.Summary.CrashKills)
		}
		if len(rep.Summary.Survivors) > 0 {
			fmt.Println("surviving mutants (suite holes):")
			for _, sv := range rep.Summary.Survivors {
				fmt.Println("  " + sv)
			}
		}

	case "export":
		e, err := benchmodels.Get(arg(args, 0))
		check(err)
		sys, err := core.FromModel(e.Build())
		check(err)
		check(sys.Save(arg(args, 1)))
		fmt.Printf("wrote %s\n", arg(args, 1))

	default:
		usage()
	}
}

// loadSystem resolves the argument as a file path or a built-in benchmark
// name.
func loadSystem(name string) *core.System {
	if _, err := os.Stat(name); err == nil {
		sys, err := core.Load(name)
		check(err)
		return sys
	}
	if e, err := benchmodels.Get(name); err == nil {
		sys, err := core.FromModel(e.Build())
		check(err)
		return sys
	}
	fail(fmt.Errorf("%q is neither a model file nor a built-in benchmark (%v)", name, benchmodels.Names()))
	return nil
}

func arg(args []string, i int) string {
	if i >= len(args) {
		usage()
	}
	return args[i]
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cftcg emit|fuzz|analyze|cov|convert|trace|info|mutate|export ... (see package doc)")
	os.Exit(2)
}

func check(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cftcg:", err)
	os.Exit(1)
}
