// Command benchtab regenerates the paper's evaluation artifacts: Table 2
// (benchmark statistics), Table 3 (coverage comparison), Figure 7 (coverage
// vs time), Figure 8 (model-oriented vs fuzz-only), and the §4 execution
// speed measurement.
//
// Usage:
//
//	benchtab [flags] table2|table3|fig7|fig8|speed|cputask|mutation|all
//
// Examples:
//
//	benchtab -budget 5s -reps 3 table3
//	benchtab -budget 2s fig7
//	benchtab -models SolarPV,TCP table3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/fuzz"
	"cftcg/internal/harness"
	"cftcg/internal/sldv"
	"cftcg/internal/vm"
)

func main() {
	budget := flag.Duration("budget", 2*time.Second, "wall budget per tool per model")
	reps := flag.Int("reps", 3, "repetitions for randomized tools (paper: 10)")
	seed := flag.Int64("seed", 1, "base random seed")
	depth := flag.Int("sldv-depth", 5, "SLDV unrolling depth limit")
	models := flag.String("models", "", "comma-separated subset of models (default: all)")
	points := flag.Int("points", 16, "figure 7 sample columns")
	throttle := flag.Float64("sim-throttle", -1, "SimCoTest steps/sec cap (-1 = calibrated default, 0 = native interpreter speed; paper measured 6)")
	mutants := flag.Int("mutants", 100, "mutant pool size per model (mutation command)")
	optimize := flag.Bool("opt", false, "run every tool on the translation-validated optimized program")
	backendName := flag.String("backend", "", "VM backend for the fuzz-based tools: switch (default) or threaded")
	flag.Parse()

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}

	cfg := harness.DefaultConfig()
	cfg.Budget = *budget
	cfg.Repetitions = *reps
	cfg.Seed = *seed
	cfg.SLDVDepth = *depth
	cfg.Optimize = *optimize
	backend, err := vm.ParseBackend(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
	cfg.Backend = backend
	if *throttle >= 0 {
		cfg.SimThrottleStepsPerSec = *throttle
	}

	entries := benchmodels.All()
	if *models != "" {
		want := map[string]bool{}
		for _, m := range strings.Split(*models, ",") {
			want[strings.TrimSpace(m)] = true
		}
		var filtered []benchmodels.Entry
		for _, e := range entries {
			if want[e.Name] {
				filtered = append(filtered, e)
			}
		}
		entries = filtered
	}

	switch cmd {
	case "table2":
		results := run(entries, []harness.Tool{harness.ToolCFTCG}, cfgWith(cfg, 100*time.Millisecond, 1))
		fmt.Print(harness.FormatTable2(results))

	case "table3":
		results := run(entries, []harness.Tool{harness.ToolSLDV, harness.ToolSimCoTest, harness.ToolCFTCG}, cfg)
		fmt.Print(harness.FormatTable3(results))

	case "fig7":
		results := run(entries, []harness.Tool{harness.ToolSLDV, harness.ToolSimCoTest, harness.ToolCFTCG}, cfg)
		fmt.Print(harness.FormatFigure7(results, cfg.Budget, *points))

	case "fig8":
		results := run(entries, []harness.Tool{harness.ToolCFTCG, harness.ToolFuzzOnly}, cfg)
		fmt.Print(harness.FormatFigure8(results))

	case "speed":
		e, err := benchmodels.Get("SolarPV")
		check(err)
		c, err := codegen.Compile(e.Build())
		check(err)
		sp, err := harness.MeasureSpeed(c, cfg.Budget, cfg.Seed)
		check(err)
		fmt.Println(sp)

	case "cputask":
		// §4: CPUTask's queue-full branches — how fast the fuzzer reaches
		// full coverage vs what the same executions would cost at
		// simulation speed.
		e, err := benchmodels.Get("CPUTask")
		check(err)
		c, err := codegen.Compile(e.Build())
		check(err)
		eng := fuzz.MustEngine(c, fuzz.Options{Seed: cfg.Seed, Budget: cfg.Budget})
		res := eng.Run()
		sp, err := harness.MeasureSpeed(c, 300*time.Millisecond, cfg.Seed)
		check(err)
		fmt.Printf("CPUTask: decision %.1f%% after %d executions (%d model iterations) in %s\n",
			res.Report.Decision(), res.Execs, res.Steps, cfg.Budget)
		atSim := float64(res.Steps) / sp.SimStepsPerSec
		atPaperRate := float64(res.Steps) / 6 / 3600
		fmt.Printf("the same iterations would take %.1fs on our engine (ratio %.0fx)\n", atSim, sp.Ratio())
		fmt.Printf("and %.0f hours at the paper's measured 6 it/s engine rate\n", atPaperRate)
		fmt.Printf("paper: 37 seconds of fuzzing vs an estimated 44.5 hours at simulation speed\n")

	case "objectives":
		// SLDV-style per-objective report for each selected model: the
		// unrolling depth at which the bounded analysis reached each
		// decision outcome, and which stayed undecided.
		for _, e := range entries {
			c, err := codegen.Compile(e.Build())
			check(err)
			res := sldvRun(c, cfg)
			fmt.Print(res.FormatObjectives(c.Plan))
			fmt.Println()
		}

	case "hybrid":
		// §6 future work: constraint solving seeds the fuzzer. Compare
		// plain CFTCG against the hybrid at the same total budget.
		results := run(entries, []harness.Tool{harness.ToolCFTCG, harness.ToolHybrid}, cfg)
		fmt.Printf("%-9s | %22s | %22s\n", "Model", "CFTCG (DC/CC/MCDC)", "Hybrid (DC/CC/MCDC)")
		for _, mr := range results {
			f := mr.Results[harness.ToolCFTCG]
			h := mr.Results[harness.ToolHybrid]
			fmt.Printf("%-9s | %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%%\n",
				mr.Entry.Name, f.Decision, f.Condition, f.MCDC, h.Decision, h.Condition, h.MCDC)
		}

	case "ablation":
		// CFTCG variants at a fixed execution budget: full engine vs no
		// iteration-difference priority vs no comparison-constant hints.
		rows, err := harness.RunAblation(entries, 20000, cfg.Seed, cfg.Repetitions)
		check(err)
		fmt.Print(harness.FormatAblation(rows))

	case "mutation":
		// Mutation score per tool: one shared mutant pool per model,
		// every tool's generated suite graded against it (extends the
		// Table 3 coverage comparison to fault detection).
		mcfg := cfg
		mcfg.MutantBudget = *mutants
		tools := []harness.Tool{harness.ToolSLDV, harness.ToolSimCoTest, harness.ToolCFTCG, harness.ToolFuzzOnly}
		results := run(entries, tools, mcfg)
		fmt.Print(harness.FormatMutationTable(results, tools))

	case "all":
		tools := []harness.Tool{harness.ToolSLDV, harness.ToolSimCoTest, harness.ToolCFTCG, harness.ToolFuzzOnly}
		results := run(entries, tools, cfg)
		fmt.Println("== Table 2 ==")
		fmt.Print(harness.FormatTable2(results))
		fmt.Println("\n== Table 3 ==")
		fmt.Print(harness.FormatTable3(results))
		fmt.Println("\n== Figure 7 ==")
		fmt.Print(harness.FormatFigure7(results, cfg.Budget, *points))
		fmt.Println("\n== Figure 8 ==")
		fmt.Print(harness.FormatFigure8(results))

	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
}

func sldvRun(c *codegen.Compiled, cfg harness.Config) *sldv.Result {
	return sldv.Run(c, sldv.Options{
		MaxDepth:   cfg.SLDVDepth,
		NodeBudget: cfg.SLDVNodes,
		Budget:     cfg.Budget,
	})
}

func cfgWith(cfg harness.Config, budget time.Duration, reps int) harness.Config {
	cfg.Budget = budget
	cfg.Repetitions = reps
	return cfg
}

func run(entries []benchmodels.Entry, tools []harness.Tool, cfg harness.Config) []harness.ModelResult {
	var out []harness.ModelResult
	for _, e := range entries {
		fmt.Fprintf(os.Stderr, "running %s (%d tools x %s x %d reps)...\n",
			e.Name, len(tools), cfg.Budget, cfg.Repetitions)
		mr, err := harness.RunModel(e, tools, cfg)
		check(err)
		out = append(out, mr)
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}
