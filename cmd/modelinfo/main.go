// Command modelinfo prints Table-2-style statistics (branch and block
// counts, tuple layout, mutation surface) for the built-in benchmarks or
// for a model file.
//
// Usage:
//
//	modelinfo             all built-in benchmarks
//	modelinfo <model>     one benchmark or .slx-like file
package main

import (
	"fmt"
	"os"

	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/core"
	"cftcg/internal/mutate"
	"cftcg/internal/opt"
)

func main() {
	if len(os.Args) > 1 {
		one(os.Args[1])
		return
	}
	fmt.Printf("%-9s %-36s %8s %8s %8s %8s %6s %8s %7s %7s %7s\n",
		"Model", "Functionality", "#Branch", "(paper)", "#Block", "(paper)", "Tuple", "#MutSite",
		"#Instr", "DeadSt", "#Opt")
	for _, e := range benchmodels.All() {
		m := e.Build()
		c, err := codegen.Compile(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		instrs := len(c.Prog.Init) + len(c.Prog.Step)
		deadStores := opt.DeadStoreWarnings(c.Prog, c.Plan)
		optp, _, err := opt.Optimize(c.Prog, c.Plan, opt.Config{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "modelinfo: %s: optimize: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-9s %-36s %8d %8d %8d %8d %5dB %8d %7d %7d %7d\n",
			e.Name, e.Functionality, c.Plan.NumBranches, e.PaperBranch,
			m.Root.CountBlocks(), e.PaperBlock, c.Prog.TupleSize(),
			mutate.Surface(c.Prog, m).Total(),
			instrs, deadStores, len(optp.Init)+len(optp.Step))
	}
}

func one(name string) {
	var sys *core.System
	if _, err := os.Stat(name); err == nil {
		s, err := core.Load(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelinfo:", err)
			os.Exit(1)
		}
		sys = s
	} else {
		e, err := benchmodels.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelinfo:", err)
			os.Exit(1)
		}
		s, err := core.FromModel(e.Build())
		if err != nil {
			fmt.Fprintln(os.Stderr, "modelinfo:", err)
			os.Exit(1)
		}
		sys = s
	}
	plan := sys.Compiled.Plan
	prog := sys.Compiled.Prog
	fmt.Printf("model %s\n", sys.Model.Name)
	fmt.Printf("  blocks:     %d\n", sys.Model.Root.CountBlocks())
	fmt.Printf("  branches:   %d (%d decisions, %d conditions)\n",
		plan.NumBranches, len(plan.Decisions), len(plan.Conds))
	fmt.Printf("  instructions: init %d, step %d (total %d); dead stores: %d\n",
		len(prog.Init), len(prog.Step), len(prog.Init)+len(prog.Step),
		opt.DeadStoreWarnings(prog, plan))
	if _, st, err := opt.Optimize(prog, plan, opt.Config{}); err == nil {
		fmt.Printf("  optimized:  %s\n", st.Summary())
	} else {
		fmt.Fprintf(os.Stderr, "modelinfo: optimize: %v\n", err)
	}
	lay := sys.Layout()
	fmt.Printf("  tuple:      %d bytes\n", lay.TupleSize)
	for _, f := range lay.Fields {
		fmt.Printf("    +%-3d %-12s %s\n", f.Offset, f.Name, f.Type)
	}
	fmt.Printf("  decisions by instrumentation mode:\n")
	byMode := map[byte]int{}
	for i := range plan.Decisions {
		byMode[plan.Decisions[i].Kind.Mode()]++
	}
	for _, mode := range []byte{'a', 'b', 'c', 'd'} {
		fmt.Printf("    (%c) %d\n", mode, byMode[mode])
	}
	sc := mutate.Surface(sys.Compiled.Prog, sys.Model)
	fmt.Printf("  mutation surface: %d sites\n", sc.Total())
	fmt.Printf("    relational ops:    %d\n", sc.RelOps)
	fmt.Printf("    arithmetic ops:    %d\n", sc.ArithOps)
	fmt.Printf("    constants:         %d\n", sc.Consts)
	fmt.Printf("    logical ops:       %d\n", sc.LogicOps)
	fmt.Printf("    stateflow guards:  %d\n", sc.Guards)
	fmt.Printf("    priority swaps:    %d\n", sc.Priorities)
}
