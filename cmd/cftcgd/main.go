// Command cftcgd is the CFTCG campaign daemon: a long-running fuzzing
// service that accepts campaign submissions over HTTP, runs each one as a
// multi-shard ensemble with live cross-pollination, and exposes a JSON
// status API plus Prometheus-text metrics.
//
//	cftcgd [-addr host:port] [-runners n] [-drain-timeout d] [-journal dir]
//	        [-max-queue n] [-max-import-bytes n] [-opt]
//
// With -journal the daemon is crash-durable: every job state transition is
// appended to a WAL in the journal directory, and on restart the journal is
// replayed — finished campaigns reappear in the API, campaigns that were
// queued or running when the process died are requeued and resume their
// shards from the per-shard checkpoint files the journal directory hosts.
//
// Endpoints (see internal/campaign.Server.Handler):
//
//	GET  /healthz                     liveness + health detail (503 degraded)
//	GET  /readyz                      readiness (503 while draining)
//	GET  /metrics                     Prometheus text exposition
//	GET  /api/campaigns               all campaigns with live snapshots
//	POST /api/campaigns               submit {"model","shards","budget",...}
//	GET  /api/campaigns/{id}          one campaign
//	POST /api/campaigns/{id}/stop     stop a running / cancel a queued one
//	GET  /api/campaigns/{id}/corpus   export coverage-carrying inputs
//	POST /api/campaigns/{id}/corpus   inject cases into a running campaign
//
// A model is a built-in benchmark name (e.g. SolarPV) or the path of an
// .slx-like container readable by the daemon. On SIGTERM/SIGINT the daemon
// drains gracefully: the listener stops, queued campaigns are canceled,
// running shards stop through their Options.Stop channels and flush their
// per-shard checkpoints, then the process exits. A second signal kills it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/campaign"
	"cftcg/internal/codegen"
	"cftcg/internal/core"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8355", "HTTP listen address (port 0 picks one)")
	runners := flag.Int("runners", 1, "campaigns run concurrently (each fans out over its shards)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for running campaigns on shutdown")
	journalDir := flag.String("journal", "", "journal directory for crash-durable campaign state (empty = in-memory only)")
	maxQueue := flag.Int("max-queue", 128, "queued submissions beyond this are shed with 503")
	maxImport := flag.Int64("max-import-bytes", 32<<20, "corpus import request body cap")
	optimize := flag.Bool("opt", false, "optimize every campaign's program before fuzzing (translation-validated)")
	backend := flag.String("backend", "", "VM backend every campaign executes on: switch or threaded (empty = per-submission choice)")
	flag.Parse()

	srv, err := campaign.NewServerWithConfig(resolveModel, campaign.ServerConfig{
		Runners:        *runners,
		MaxQueue:       *maxQueue,
		MaxImportBytes: *maxImport,
		Journal:        *journalDir,
		ForceOptimize:  *optimize,
		ForceBackend:   *backend,
	})
	if err != nil {
		log.Fatalf("cftcgd: %v", err)
	}
	// Slowloris/stuck-peer protection: generous ceilings that still bound
	// every connection. Write must cover a full corpus export.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cftcgd: listen: %v", err)
	}
	// The resolved address line is load-bearing: with -addr :0 it is how
	// scripts (check.sh's smoke test) learn the chosen port.
	log.Printf("cftcgd: listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("cftcgd: serve: %v", err)
	case sig := <-sigc:
		log.Printf("cftcgd: %s — draining (again to kill)", sig)
	}
	go func() {
		<-sigc
		log.Fatal("cftcgd: killed")
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("cftcgd: http shutdown: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Fatalf("cftcgd: %v", err)
	}
	log.Print("cftcgd: drained")
}

// resolveModel turns a submission's model name into a compiled program: a
// built-in benchmark name first, then a server-side .slx container path.
func resolveModel(name string) (*codegen.Compiled, error) {
	if e, err := benchmodels.Get(name); err == nil {
		sys, err := core.FromModel(e.Build())
		if err != nil {
			return nil, err
		}
		return sys.Compiled, nil
	}
	if _, err := os.Stat(name); err == nil {
		sys, err := core.Load(name)
		if err != nil {
			return nil, err
		}
		return sys.Compiled, nil
	}
	return nil, fmt.Errorf("%q is neither a built-in benchmark (%v) nor a readable model file",
		name, benchmodels.Names())
}
