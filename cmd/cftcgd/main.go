// Command cftcgd is the CFTCG campaign daemon: a long-running fuzzing
// service that accepts campaign submissions over HTTP, runs each one as a
// multi-shard ensemble with live cross-pollination, and exposes a JSON
// status API plus Prometheus-text metrics.
//
//	cftcgd [-addr host:port] [-runners n] [-drain-timeout d]
//
// Endpoints (see internal/campaign.Server.Handler):
//
//	GET  /healthz                     liveness probe
//	GET  /metrics                     Prometheus text exposition
//	GET  /api/campaigns               all campaigns with live snapshots
//	POST /api/campaigns               submit {"model","shards","budget",...}
//	GET  /api/campaigns/{id}          one campaign
//	POST /api/campaigns/{id}/stop     stop a running / cancel a queued one
//	GET  /api/campaigns/{id}/corpus   export coverage-carrying inputs
//	POST /api/campaigns/{id}/corpus   inject cases into a running campaign
//
// A model is a built-in benchmark name (e.g. SolarPV) or the path of an
// .slx-like container readable by the daemon. On SIGTERM/SIGINT the daemon
// drains gracefully: the listener stops, queued campaigns are canceled,
// running shards stop through their Options.Stop channels and flush their
// per-shard checkpoints, then the process exits. A second signal kills it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/campaign"
	"cftcg/internal/codegen"
	"cftcg/internal/core"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8355", "HTTP listen address (port 0 picks one)")
	runners := flag.Int("runners", 1, "campaigns run concurrently (each fans out over its shards)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for running campaigns on shutdown")
	flag.Parse()

	srv := campaign.NewServer(resolveModel, *runners)
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("cftcgd: listen: %v", err)
	}
	// The resolved address line is load-bearing: with -addr :0 it is how
	// scripts (check.sh's smoke test) learn the chosen port.
	log.Printf("cftcgd: listening on %s", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("cftcgd: serve: %v", err)
	case sig := <-sigc:
		log.Printf("cftcgd: %s — draining (again to kill)", sig)
	}
	go func() {
		<-sigc
		log.Fatal("cftcgd: killed")
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("cftcgd: http shutdown: %v", err)
	}
	if err := srv.Drain(ctx); err != nil {
		log.Fatalf("cftcgd: %v", err)
	}
	log.Print("cftcgd: drained")
}

// resolveModel turns a submission's model name into a compiled program: a
// built-in benchmark name first, then a server-side .slx container path.
func resolveModel(name string) (*codegen.Compiled, error) {
	if e, err := benchmodels.Get(name); err == nil {
		sys, err := core.FromModel(e.Build())
		if err != nil {
			return nil, err
		}
		return sys.Compiled, nil
	}
	if _, err := os.Stat(name); err == nil {
		sys, err := core.Load(name)
		if err != nil {
			return nil, err
		}
		return sys.Compiled, nil
	}
	return nil, fmt.Errorf("%q is neither a built-in benchmark (%v) nor a readable model file",
		name, benchmodels.Names())
}
