#!/bin/sh
# check.sh — the repository's CI gate: formatting, vet, build, race tests.
# Exits non-zero on the first failure. Equivalent to `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

# Focused full-speed race pass over the concurrency-bearing packages: the
# engine's cross-goroutine status plane, the campaign daemon's shard fan-out
# and the shared coverage structures. (The later -short -race sweep covers
# the rest of the tree.)
echo "== lint: go test -race (concurrency packages) =="
go test -race ./internal/fuzz ./internal/campaign ./internal/coverage ./internal/vm ./internal/ir
# The optimizer and mutation packages ride along in -short mode: their
# property tests (1k-case lockstep sweeps, full mutant grinds) starve under
# the race detector's ~15x slowdown.
go test -short -race ./internal/opt ./internal/mutate

echo "== go build =="
go build ./...

echo "== go test (shuffled) =="
go test -shuffle=on ./...

# Race mode runs -short: the headline campaign comparisons are
# timing-sensitive and starve under the race detector's ~15x slowdown.
echo "== go test -short -race =="
go test -short -race ./...

# Coverage floors on the load-bearing packages (VM backends, IR).
echo "== coverage floors =="
scripts/cover.sh

# Native fuzz targets, briefly, past their committed corpora: the
# cross-backend lockstep rig and the disassembler round-tripper.
echo "== fuzz smoke =="
go test ./internal/vm -run '^$' -fuzz '^FuzzVMBackendsLockstep$' -fuzztime 10s
go test ./internal/ir -run '^$' -fuzz '^FuzzDisasmRoundTrip$' -fuzztime 5s

# Mutation-testing smoke: generate mutants for a small model, kill them
# with a freshly fuzzed suite, and require a mutation score in (0, 1].
# Same gate as `make mutate-smoke`.
echo "== mutate smoke =="
out=$(go run ./cmd/cftcg mutate SolarPV -budget 30 -execs 1500 -fuzz-budget 5s -json)
score=$(echo "$out" | sed -n 's/.*"score": \([0-9.]*\),*/\1/p' | head -n1)
echo "mutation score: $score"
awk "BEGIN { exit !($score > 0 && $score <= 1) }" </dev/null \
	|| { echo "mutate-smoke: score $score outside (0, 1]"; exit 1; }

# Optimizer smoke: push every built-in benchmark through the translation-
# validated optimization pipeline via the CLI — each must come out
# verifier-clean and VM-lockstep equivalent. Same gate as `make opt-smoke`.
echo "== opt smoke =="
for m in CPUTask AFC TCP RAC EVCS TWC UTPC SolarPV; do
	out=$(go run ./cmd/cftcg analyze "$m" -stats -opt) \
		|| { echo "opt-smoke: $m: optimizer failed"; exit 1; }
	echo "$out" | grep -q "optimization validated" \
		|| { echo "opt-smoke: $m: missing validation line"; exit 1; }
	echo "opt-smoke: $m: $(echo "$out" | sed -n 's/^optimized: //p')"
done

# Chaos suite: arm the build-tag-gated failpoints and run the
# fault-injection tests (torn WAL writes, fsync failures, checkpoint
# panics, hanging shards, kill-9 of a journaled daemon) under -race.
echo "== chaos: go test -race -tags faultinject =="
go test -race -tags faultinject ./internal/faultinject ./internal/wal ./internal/fuzz ./internal/campaign

# Daemon smoke test: build cftcgd, bring it up on an ephemeral port, poll
# the health and metrics planes, submit one campaign, verify a non-empty
# status snapshot, then drain it with SIGTERM.
echo "== cftcgd smoke =="
tmp=$(mktemp -d)
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT
go build -o "$tmp/cftcgd" ./cmd/cftcgd

# Failpoints must compile to no-ops in plain builds: the armed marker
# string appears only in binaries built with -tags faultinject.
echo "== faultinject no-op check =="
go build -o "$tmp/cftcgd_armed" -tags faultinject ./cmd/cftcgd
if grep -qa "faultinject: armed" "$tmp/cftcgd"; then
	echo "plain build carries armed failpoints"; exit 1
fi
grep -qa "faultinject: armed" "$tmp/cftcgd_armed" \
	|| { echo "armed build is missing the failpoint marker"; exit 1; }

"$tmp/cftcgd" -addr 127.0.0.1:0 -journal "$tmp/journal" >"$tmp/daemon.log" 2>&1 &
daemon_pid=$!

# The daemon logs its resolved listen address; extract the ephemeral port.
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/.*listening on //p' "$tmp/daemon.log" | head -n1)
	[ -n "$addr" ] && break
	sleep 0.1
done
[ -n "$addr" ] || { echo "cftcgd never reported its address"; cat "$tmp/daemon.log"; exit 1; }

curl -fsS "http://$addr/healthz" | grep -q ok || { echo "healthz failed"; exit 1; }
curl -fsS "http://$addr/metrics" | grep -q cftcgd_uptime_seconds || { echo "metrics failed"; exit 1; }
curl -fsS -X POST -d '{"model":"SolarPV","shards":2,"budget":"2s","seed":1}' \
	"http://$addr/api/campaigns" | grep -q '"id": 1' || { echo "submit failed"; exit 1; }

# Poll until the campaign's snapshot shows real work (it runs for 2s).
ok=""
for _ in $(seq 1 100); do
	if curl -fsS "http://$addr/api/campaigns/1" | grep -q '"execs": [1-9]'; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "campaign never reported progress"; curl -fsS "http://$addr/api/campaigns/1"; exit 1; }
curl -fsS "http://$addr/metrics" | grep -q 'cftcg_campaign_execs_total{campaign="1"' \
	|| { echo "campaign metrics missing"; exit 1; }

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "cftcgd drain failed"; cat "$tmp/daemon.log"; exit 1; }
grep -q drained "$tmp/daemon.log" || { echo "cftcgd did not drain"; cat "$tmp/daemon.log"; exit 1; }
ls "$tmp/journal"/*.wal >/dev/null 2>&1 || { echo "journal wrote no segments"; exit 1; }

echo "OK"
