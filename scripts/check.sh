#!/bin/sh
# check.sh — the repository's CI gate: formatting, vet, build, race tests.
# Exits non-zero on the first failure. Equivalent to `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

# Race mode runs -short: the headline campaign comparisons are
# timing-sensitive and starve under the race detector's ~15x slowdown.
echo "== go test -short -race =="
go test -short -race ./...

echo "OK"
