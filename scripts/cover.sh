#!/bin/sh
# cover.sh — statement-coverage floors for the packages where correctness is
# load-bearing: the VM backends (every campaign and every mutant grind
# executes here) and the IR (programs, verifier, disassembler, generator).
# Fails when a package drops below its committed floor. Floors ratchet up
# with the test suite; lower one only with a reviewed justification.
set -eu

cd "$(dirname "$0")/.."

check() {
	pkg=$1
	floor=$2
	pct=$(go test -cover "./$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	[ -n "$pct" ] || { echo "cover: no coverage line for $pkg"; exit 1; }
	echo "cover: $pkg $pct% (floor $floor%)"
	awk "BEGIN { exit !($pct >= $floor) }" </dev/null \
		|| { echo "cover: $pkg coverage $pct% below floor $floor%"; exit 1; }
}

check internal/vm 85
check internal/ir 80
