#!/bin/sh
# bench.sh — run the pinned benchmark set and write a machine-readable
# snapshot (default BENCH_v9.json) for cross-PR performance tracking.
# The pinned set is the fast, stable subset of the root bench_test.go
# harness: mutation-strategy costs, mutant-runner throughput (batched lanes
# vs the sequential reference), the full harness orchestration path, the
# original-vs-optimized VM comparison, the switch-vs-threaded backend
# comparison, and the batch (SoA lanes) vs separate-machines comparison.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_v9.json}"
pattern='^(BenchmarkTable1MutationStrategies|BenchmarkMutantKill|BenchmarkHarnessTable3|BenchmarkVMOptimized|BenchmarkVMBackends|BenchmarkVMBatch)$'

raw=$(go test -run '^$' -bench "$pattern" -benchtime 200ms .)
echo "$raw" >&2

echo "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
	print "{"
	printf "  \"date\": \"%s\",\n", date
	printf "  \"benchmarks\": [\n"
	n = 0
}
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", $1, $2, $3
	for (i = 5; i < NF; i += 2) printf ", \"%s\": %s", $(i+1), $i
	printf "}"
}
END {
	printf "\n  ]\n}\n"
}' >"$out"
echo "wrote $out"
