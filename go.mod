module cftcg

go 1.22
